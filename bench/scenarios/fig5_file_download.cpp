// Scenario E4 — Paper Fig. 5: HTTP and UDP file-retrieval latency from a
// cloud-resident web server, baseline (unmodified Xen) vs StopWatch, across
// file sizes (cold start, averages over repeated runs).
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/cloud.hpp"
#include "experiment/registry.hpp"
#include "stats/summary.hpp"
#include "workload/file_service.hpp"

namespace stopwatch::bench {
namespace {

using experiment::ParamSpec;
using experiment::Result;
using experiment::ScenarioContext;
using workload::FileDownloadClient;

const std::vector<std::uint32_t> kSizes = {1 << 10, 10 << 10, 100 << 10,
                                           1 << 20, 10 << 20};

std::vector<double> run_series(core::Policy policy,
                               FileDownloadClient::Protocol proto,
                               std::uint64_t seed, std::size_t size_count,
                               int runs_per_size) {
  core::CloudConfig cfg;
  cfg.seed = seed;
  cfg.policy = policy;
  cfg.machine_count = 3;
  core::Cloud cloud(cfg);
  const core::VmHandle vm = cloud.add_vm(
      "webserver",
      [] { return std::make_unique<workload::FileServerProgram>(); },
      {0, 1, 2});
  FileDownloadClient client(cloud, "client", cloud.vm_addr(vm), proto);
  cloud.start();

  std::vector<double> avg_ms;
  for (std::size_t i = 0; i < size_count; ++i) {
    std::vector<double> latencies;
    for (int run = 0; run < runs_per_size; ++run) {
      bool done = false;
      Duration latency{};
      client.download(kSizes[i], [&](Duration d) {
        done = true;
        latency = d;
      });
      while (!done) cloud.run_for(Duration::millis(100));
      latencies.push_back(latency.to_seconds() * 1e3);
    }
    avg_ms.push_back(stats::summarize(latencies).mean);
  }
  return avg_ms;
}

Result run(const ScenarioContext& ctx) {
  const auto size_count = static_cast<std::size_t>(ctx.param_int("size_count"));
  const int runs = ctx.param_int("runs_per_size");

  const auto http_base =
      run_series(core::Policy::kBaselineXen,
                 FileDownloadClient::Protocol::kHttpTcp, ctx.seed() ^ 21,
                 size_count, runs);
  const auto http_sw = run_series(core::Policy::kStopWatch,
                                  FileDownloadClient::Protocol::kHttpTcp,
                                  ctx.seed() ^ 21, size_count, runs);
  const auto udp_base =
      run_series(core::Policy::kBaselineXen, FileDownloadClient::Protocol::kUdp,
                 ctx.seed() ^ 22, size_count, runs);
  const auto udp_sw =
      run_series(core::Policy::kStopWatch, FileDownloadClient::Protocol::kUdp,
                 ctx.seed() ^ 22, size_count, runs);

  Result result("fig5_file_download");
  std::vector<double> sizes_kb;
  std::vector<double> http_ratio;
  std::vector<double> udp_ratio;
  for (std::size_t i = 0; i < size_count; ++i) {
    sizes_kb.push_back(static_cast<double>(kSizes[i]) / 1024.0);
    http_ratio.push_back(http_sw[i] / http_base[i]);
    udp_ratio.push_back(udp_sw[i] / udp_base[i]);
  }
  result.add_series("file_size", "KiB", sizes_kb);
  result.add_series("http_baseline_latency", "ms", http_base);
  result.add_series("http_stopwatch_latency", "ms", http_sw);
  result.add_series("http_overhead_ratio", "x", http_ratio);
  result.add_series("udp_baseline_latency", "ms", udp_base);
  result.add_series("udp_stopwatch_latency", "ms", udp_sw);
  result.add_series("udp_overhead_ratio", "x", udp_ratio);
  result.add_metric("http_ratio_at_largest_size", http_ratio.back(), "x");
  result.add_metric("udp_ratio_at_largest_size", udp_ratio.back(), "x");
  result.set_note(
      "Paper shape check: HTTP-over-StopWatch settles below ~2.8x for sizes "
      ">= 100 KB (inbound ACKs each pay delta_n); UDP approaches the "
      "baseline as size grows (one inbound packet per retrieval).");
  return result;
}

[[maybe_unused]] const experiment::ScenarioRegistrar kRegistrar{{
    .name = "fig5_file_download",
    .description =
        "Fig. 5: HTTP and UDP file-retrieval latency vs file size, baseline "
        "Xen vs StopWatch",
    .params = {ParamSpec{"size_count",
                         "number of file sizes from {1K,10K,100K,1M,10M}",
                         5.0, 3.0}.with_int_range(1, 5),
               ParamSpec{"runs_per_size", "downloads averaged per size", 5.0,
                         2.0}.with_int_range(1, 100)},
    .deterministic = true,
    .run = run,
}};

}  // namespace
}  // namespace stopwatch::bench
