// Scenario E9 — Paper Sec. VII-A: calibration of the virtual-time offsets
// Δn (network-interrupt proposals) and Δd (disk/DMA delivery).
//
// Δn must dominate the arrival spread of a packet's ingress copies,
// proposal propagation, and the allowed virtual-time gap between the two
// fastest replicas; otherwise the chosen median can already have passed (a
// synchrony violation, Sec. V footnote 4).
#include <algorithm>
#include <vector>

#include "bench_util.hpp"
#include "experiment/registry.hpp"

namespace stopwatch::bench {
namespace {

using experiment::ParamSpec;
using experiment::Result;
using experiment::ScenarioContext;

Result run(const ScenarioContext& ctx) {
  const Duration run_time = Duration::seconds(ctx.param("run_time_s"));

  Result result("delta_calibration");

  // Δn sweep: victim-loaded attacker triple.
  const std::vector<int> dn_sweep =
      ctx.smoke() ? std::vector<int>{2, 6, 10}
                  : std::vector<int>{2, 4, 6, 8, 10, 12};
  long min_safe_delta_n_ms = -1;
  std::vector<double> dn_ms;
  std::vector<double> dn_deliveries;
  std::vector<double> dn_spread_p99;
  std::vector<double> dn_margin_min;
  std::vector<double> dn_divergences;
  for (const int dn : dn_sweep) {
    TimingScenarioConfig tc;
    tc.run_time = run_time;
    tc.delta_n = Duration::millis(dn);
    tc.seed = ctx.seed() ^ 77;
    const auto r = run_timing_scenario(tc);
    const auto spread = r.proposal_spread_ms.empty()
                            ? stats::Summary{}
                            : stats::summarize(r.proposal_spread_ms);
    double margin_min = 1e18;
    for (const double m : r.median_margin_ms) {
      margin_min = std::min(margin_min, m);
    }
    dn_ms.push_back(dn);
    dn_deliveries.push_back(static_cast<double>(r.deliveries));
    dn_spread_p99.push_back(spread.p99);
    dn_margin_min.push_back(r.median_margin_ms.empty() ? 0.0 : margin_min);
    dn_divergences.push_back(static_cast<double>(r.divergences));
    if (min_safe_delta_n_ms < 0 && r.divergences == 0) {
      min_safe_delta_n_ms = dn;
    }
  }
  result.add_series("delta_n", "ms", dn_ms);
  result.add_series("delta_n_deliveries", "packets", dn_deliveries);
  result.add_series("delta_n_proposal_spread_p99", "ms", dn_spread_p99);
  result.add_series("delta_n_median_margin_min", "ms", dn_margin_min);
  result.add_series("delta_n_divergences", "events", dn_divergences);
  result.add_metric("min_safe_delta_n",
                    static_cast<double>(min_safe_delta_n_ms), "ms");

  // Δd sweep: the file-serving victim's disk path.
  const std::vector<int> dd_sweep =
      ctx.smoke() ? std::vector<int>{6, 10, 20}
                  : std::vector<int>{6, 8, 10, 12, 15, 20, 30};
  std::vector<double> dd_ms;
  std::vector<double> dd_margin_min;
  std::vector<double> dd_margin_p50;
  std::vector<double> dd_late;
  for (const int dd : dd_sweep) {
    TimingScenarioConfig tc;
    tc.run_time = run_time;
    tc.delta_d = Duration::millis(dd);
    tc.seed = ctx.seed() ^ 78;
    const auto r = run_timing_scenario(tc);
    double margin_min = 1e18;
    for (const double m : r.disk_margin_ms) {
      margin_min = std::min(margin_min, m);
    }
    const auto s = r.disk_margin_ms.empty() ? stats::Summary{}
                                            : stats::summarize(r.disk_margin_ms);
    dd_ms.push_back(dd);
    dd_margin_min.push_back(r.disk_margin_ms.empty() ? 0.0 : margin_min);
    dd_margin_p50.push_back(s.p50);
    dd_late.push_back(static_cast<double>(r.divergences));
  }
  result.add_series("delta_d", "ms", dd_ms);
  result.add_series("delta_d_disk_margin_min", "ms", dd_margin_min);
  result.add_series("delta_d_disk_margin_p50", "ms", dd_margin_p50);
  result.add_series("delta_d_late_deliveries", "events", dd_late);

  result.set_note(
      "Paper shape check: margins grow linearly with the offsets; the "
      "smallest safe offsets sit in the high-single-digit millisecond range, "
      "matching Sec. VII-A's 7-12 ms (delta_n) and 8-15 ms (delta_d).");
  return result;
}

[[maybe_unused]] const experiment::ScenarioRegistrar kRegistrar{{
    .name = "delta_calibration",
    .description =
        "Sec. VII-A: sweep of the delta_n / delta_d virtual-time offsets "
        "against proposal spread, delivery margins, and synchrony violations",
    .params = {ParamSpec{"run_time_s", "simulated seconds per sweep point",
                         15.0, 3.0}.with_range(0.01, 3600)},
    .deterministic = true,
    .run = run,
}};

}  // namespace
}  // namespace stopwatch::bench
