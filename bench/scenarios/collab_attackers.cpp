// Scenario E10 — Paper Sec. IX: collaborating attacker VMs.
//
// A second attacker VM induces load on machines hosting replicas of the
// first attacker VM, slowing them until they are marginalized from the
// median — the surviving proposals then reflect the victim-coresident
// replica. The paper's countermeasure: more replicas (3 -> 5) force the
// attacker to marginalize several machines at once.
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "experiment/registry.hpp"

namespace stopwatch::bench {
namespace {

using experiment::ParamSpec;
using experiment::Result;
using experiment::ScenarioContext;

long detect_at_99(const TimingScenarioConfig& base,
                  const std::string& binning) {
  TimingScenarioConfig clean = base;
  clean.victim_present = false;
  TimingScenarioConfig vic = base;
  vic.victim_present = true;
  const auto r_clean = run_timing_scenario(clean);
  const auto r_vic = run_timing_scenario(vic);
  return make_detector(r_clean.inter_arrival_ms, r_vic.inter_arrival_ms,
                       binning)
      .observations_needed(0.99);
}

struct Row {
  int replicas;
  int marginalized;
};

Result run(const ScenarioContext& ctx) {
  const std::vector<Row> rows =
      ctx.smoke() ? std::vector<Row>{{3, 0}, {3, 2}, {5, 2}}
                  : std::vector<Row>{{3, 0}, {3, 1}, {3, 2}, {5, 0},
                                     {5, 1}, {5, 2}, {5, 3}};

  Result result("collab_attackers");
  std::vector<double> replicas;
  std::vector<double> marginalized;
  std::vector<double> obs99;
  // The marginalization attack targets replica agreement, but the sweep
  // runs under any backend (--param policy=...): non-replicated ones show
  // a flat curve, the control the countermeasure rows compare against.
  const hypervisor::PolicyKind policy =
      hypervisor::policy_kind_from_choice(ctx.param_choice("policy"));
  for (const Row& row : rows) {
    TimingScenarioConfig tc;
    tc.policy = policy;
    tc.replica_count = row.replicas;
    tc.run_time = Duration::seconds(ctx.param("run_time_s"));
    tc.seed = ctx.seed() ^ 91;
    tc.marginalize_machines = row.marginalized;
    tc.marginalize_load = ctx.param("marginalize_load");
    replicas.push_back(row.replicas);
    marginalized.push_back(row.marginalized);
    obs99.push_back(
        static_cast<double>(detect_at_99(tc, ctx.param_choice("binning"))));
  }
  result.add_series("replicas", "VMs", replicas);
  result.add_series("marginalized_hosts", "machines", marginalized);
  result.add_series("obs_needed_at_99", "observations", obs99);
  result.add_metric("obs99_3r_unmarginalized", obs99.front(), "observations");
  result.add_metric("obs99_last_row", obs99.back(), "observations");
  result.set_note(
      "Paper shape check: marginalizing hosts of a 3-replica VM weakens the "
      "defense (fewer observations needed); with 5 replicas the attacker "
      "must marginalize several hosts to regain the same advantage.");
  return result;
}

[[maybe_unused]] const experiment::ScenarioRegistrar kRegistrar{{
    .name = "collab_attackers",
    .description =
        "Sec. IX: collaborating attacker VMs marginalizing replica hosts, "
        "and the more-replicas countermeasure",
    .params = {ParamSpec{"run_time_s", "simulated seconds per run", 30.0,
                         5.0}.with_range(0.01, 3600),
               ParamSpec{"marginalize_load",
                         "induced load on marginalized hosts", 2.0}
                   .with_range(0, 100),
               binning_param(), policy_param()},
    .deterministic = true,
    .run = run,
}};

}  // namespace
}  // namespace stopwatch::bench
