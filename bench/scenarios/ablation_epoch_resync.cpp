// Scenario E12 — Ablation: epoch-based virtual-clock resynchronization
// (Sec. IV-A).
//
// virt(instr) drifts from real time when the machine's instruction rate
// differs from the slope's assumption. The optional epoch mechanism
// exchanges (D_k, R_k) reports, picks the median, and rebases the clock
// with a clamped slope. Smaller epochs track real time better — but tighter
// coupling to real time risks re-opening the timing channel; "virt should
// be adjusted ... only with large I values".
#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "experiment/registry.hpp"

namespace stopwatch::bench {
namespace {

using experiment::ParamSpec;
using experiment::Result;
using experiment::ScenarioContext;

struct Outcome {
  double drift_s{0};
  long obs99{0};
  std::uint64_t clean_divergences{0};
  std::uint64_t victim_divergences{0};
};

Outcome evaluate(bool resync, std::uint64_t epoch_instr,
                 const ScenarioContext& ctx) {
  TimingScenarioConfig base;
  base.run_time = Duration::seconds(ctx.param("run_time_s"));
  base.seed = ctx.seed() ^ 51;
  base.epoch_resync = resync;
  base.epoch_instr = epoch_instr;
  // The machines run 6% faster than the initial slope assumes, so the
  // uncorrected virtual clock drifts ahead of real time.
  base.base_ips = 1.06e9;
  base.slope_min = 0.80;
  base.slope_max = 1.20;

  TimingScenarioConfig clean = base;
  clean.victim_present = false;
  TimingScenarioConfig vic = base;
  vic.victim_present = true;

  const auto r_clean = run_timing_scenario(clean);
  const auto r_vic = run_timing_scenario(vic);
  Outcome out;
  out.drift_s = r_clean.clock_drift_s;
  out.obs99 = make_detector(r_clean.inter_arrival_ms, r_vic.inter_arrival_ms,
                            ctx.param_choice("binning"))
                  .observations_needed(0.99);
  out.clean_divergences = r_clean.divergences;
  out.victim_divergences = r_vic.divergences;
  return out;
}

Result run(const ScenarioContext& ctx) {
  Result result("ablation_epoch_resync");

  const Outcome off = evaluate(false, 0, ctx);
  result.add_metric("disabled_drift", off.drift_s, "s");
  result.add_metric("disabled_obs99", static_cast<double>(off.obs99),
                    "observations");
  result.add_metric("disabled_clean_divergences",
                    static_cast<double>(off.clean_divergences), "events");

  const std::vector<std::uint64_t> epochs =
      ctx.smoke() ? std::vector<std::uint64_t>{400'000'000}
                  : std::vector<std::uint64_t>{100'000'000, 400'000'000,
                                               1'600'000'000};
  std::vector<double> epoch_minstr;
  std::vector<double> drift_s;
  std::vector<double> obs99;
  std::vector<double> clean_div;
  std::vector<double> victim_div;
  double max_resync_drift = 0.0;
  for (const std::uint64_t epoch : epochs) {
    const Outcome on = evaluate(true, epoch, ctx);
    epoch_minstr.push_back(static_cast<double>(epoch / 1'000'000));
    drift_s.push_back(on.drift_s);
    obs99.push_back(static_cast<double>(on.obs99));
    clean_div.push_back(static_cast<double>(on.clean_divergences));
    victim_div.push_back(static_cast<double>(on.victim_divergences));
    max_resync_drift = std::max(max_resync_drift, on.drift_s);
  }
  result.add_series("epoch_instructions", "Minstr", epoch_minstr);
  result.add_series("resync_drift", "s", drift_s);
  result.add_series("resync_obs99", "observations", obs99);
  result.add_series("resync_clean_divergences", "events", clean_div);
  result.add_series("resync_victim_divergences", "events", victim_div);
  result.add_metric("max_resync_drift", max_resync_drift, "s");
  result.set_note(
      "Design-choice check: resync bounds the drift that is unbounded when "
      "disabled, at no drift-free divergence; a marginalized replica can "
      "miss epoch reports under victim load — use epoch resync only with "
      "large I, as Sec. IV-A recommends.");
  return result;
}

[[maybe_unused]] const experiment::ScenarioRegistrar kRegistrar{{
    .name = "ablation_epoch_resync",
    .description =
        "Ablation: epoch-based virtual-clock resynchronization (drift vs "
        "leak risk vs missed epoch reports), machines running 6% fast",
    .params = {ParamSpec{"run_time_s", "simulated seconds per run", 30.0,
                         5.0}.with_range(0.01, 3600),
               binning_param()},
    .deterministic = true,
    .run = run,
}};

}  // namespace
}  // namespace stopwatch::bench
