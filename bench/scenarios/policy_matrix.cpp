// Scenario P1 — policy_matrix: the four mitigation backends, one table.
//
// Every policy the hypervisor layer can run (baseline Xen, StopWatch,
// Deterland-style virtual-time batching, TIFC-style paced egress) is swept
// through the same two channels and the same cost probes:
//
//   * detection — the Fig. 4 access-driven channel: observations an
//     attacker timing inbound deliveries needs to detect a coresident
//     file-serving victim at 0.99 confidence (chi-squared detector);
//   * leakage   — the egress-timing channel: Miller-Madow mutual
//     information (bits per trial epoch) between a client's secret file
//     size class and the attacker-visible egress release spans, via the
//     PR-4 TimingTap estimators;
//   * cost      — mean file-download latency, its overhead relative to
//     baseline Xen, and the egress release rate.
//
// Replication helps the detection channel (StopWatch's median hides the
// coresident replica); batching and pacing quantize the egress channel
// instead. The matrix makes that trade visible in one deterministic JSON
// table — rerunning with --jobs 8 is byte-identical to --jobs 1.
#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/cloud.hpp"
#include "experiment/registry.hpp"
#include "leakage/estimators.hpp"
#include "leakage/observation_log.hpp"
#include "leakage/timing_tap.hpp"
#include "workload/file_service.hpp"

namespace stopwatch::bench {
namespace {

using experiment::ParamSpec;
using experiment::Result;
using experiment::ScenarioContext;
using leakage::ObservationLog;
using leakage::ObservationLogConfig;
using leakage::TimingTap;

struct FileChannelRun {
  double mi_bits{0.0};
  double mean_latency_ms{0.0};
  double releases_per_s{0.0};
};

/// Secret-file-size download channel under `kind`: three size classes,
/// TimingTap span observations, plus the client-visible latency and the
/// egress release rate of the serving VM.
FileChannelRun run_file_channel(hypervisor::PolicyKind kind,
                                std::uint64_t seed, int trials, int bins,
                                leakage::BinningMode mode) {
  core::CloudConfig cfg;
  cfg.seed = seed;
  cfg.policy = hypervisor::PolicyConfig{kind};
  cfg.machine_count = 3;
  core::Cloud cloud(cfg);
  const core::VmHandle vm = cloud.add_vm(
      "fileserver",
      [] { return std::make_unique<workload::FileServerProgram>(); },
      {0, 1, 2});
  workload::FileDownloadClient client(
      cloud, "matrix-client", cloud.vm_addr(vm),
      workload::FileDownloadClient::Protocol::kUdp);

  ObservationLog log(ObservationLogConfig{seed, /*reservoir_capacity=*/8192});
  TimingTap tap(cloud, vm, TimingTap::Mode::kTrialDuration, log);
  cloud.start();

  std::vector<double> latencies_ms;
  const std::uint32_t sizes[] = {24 << 10, 72 << 10, 144 << 10};
  for (int t = 0; t < trials; ++t) {
    for (int c = 0; c < 3; ++c) {
      tap.begin_trial(c);
      bool done = false;
      client.download(sizes[c], [&](Duration d) {
        done = true;
        latencies_ms.push_back(d.to_seconds() * 1e3);
      });
      while (!done) cloud.run_for(Duration::millis(50));
      tap.end_trial();
    }
  }
  const double elapsed_s = cloud.simulator().now().to_seconds();
  cloud.halt_all();

  FileChannelRun run;
  const std::vector<double> edges =
      leakage::make_bin_edges(log.pooled_samples(), mode, bins);
  run.mi_bits = leakage::mutual_information_miller_madow(
      leakage::joint_from_log(log, edges));
  run.mean_latency_ms = stats::summarize(latencies_ms).mean;
  run.releases_per_s =
      elapsed_s > 0.0 ? static_cast<double>(tap.releases_seen()) / elapsed_s
                      : 0.0;
  return run;
}

Result run(const ScenarioContext& ctx) {
  const int trials = ctx.param_int("trials_per_class");
  const double run_time_s = ctx.param("run_time_s");
  const int bins = ctx.param_int("bins");
  const leakage::BinningMode mode =
      leakage::binning_mode_from_choice(ctx.param_choice("binning"));
  const std::string& binning = ctx.param_choice("binning");

  Result result("policy_matrix");
  double baseline_latency_ms = 0.0;
  std::uint64_t index = 0;
  for (const std::string& choice : hypervisor::policy_choices()) {
    const hypervisor::PolicyKind kind =
        hypervisor::policy_kind_from_choice(choice);
    const std::uint64_t seed = ctx.seed() ^ ((index + 1) * 0x9e3779b97f4aULL);
    ++index;

    // Detection arm: inbound delivery timing, victim present vs absent.
    TimingScenarioConfig tc;
    tc.policy = kind;
    tc.run_time = Duration::from_seconds_f(run_time_s);
    tc.seed = seed;
    tc.victim_present = true;
    const auto victim = run_timing_scenario(tc);
    tc.victim_present = false;
    const auto clean = run_timing_scenario(tc);
    const auto detector =
        make_detector(clean.inter_arrival_ms, victim.inter_arrival_ms,
                      binning);
    const long obs99 = detector.observations_needed(0.99);

    // Leakage + cost arm: the secret-file-size egress channel.
    const FileChannelRun file =
        run_file_channel(kind, seed ^ 0xF11E, trials, bins, mode);
    if (kind == hypervisor::PolicyKind::kBaselineXen) {
      baseline_latency_ms = file.mean_latency_ms;
    }
    const double overhead =
        baseline_latency_ms > 0.0
            ? (file.mean_latency_ms - baseline_latency_ms) /
                  baseline_latency_ms
            : 0.0;

    result.add_metric("obs99_" + choice, static_cast<double>(obs99),
                      "observations");
    result.add_metric("bits_per_epoch_" + choice, file.mi_bits, "bits");
    result.add_metric("latency_ms_" + choice, file.mean_latency_ms, "ms");
    result.add_metric("latency_overhead_" + choice, overhead, "frac");
    result.add_metric("egress_releases_per_s_" + choice, file.releases_per_s,
                      "1/s");
  }
  result.set_note(
      "Detection (obs99: higher = safer), egress leakage (bits per trial "
      "epoch: lower = safer), and latency cost per mitigation policy. "
      "Replication hardens the inbound channel; batching/pacing quantize "
      "the egress channel.");
  return result;
}

[[maybe_unused]] const experiment::ScenarioRegistrar kRegistrar{{
    .name = "policy_matrix",
    .description =
        "Mitigation-policy sweep: detection (obs99), egress leakage "
        "(bits/epoch), and latency overhead for baseline / stopwatch / "
        "deterland / tifc in one deterministic table",
    .params =
        {ParamSpec{"trials_per_class",
                   "file retrievals per size class and policy", 16.0, 5.0}
             .with_int_range(2, 1000),
         ParamSpec{"run_time_s",
                   "simulated seconds per detection-channel run", 20.0, 4.0}
             .with_range(0.01, 3600),
         ParamSpec{"bins", "observation cells for the MI estimator", 12.0}
             .with_int_range(4, 128),
         binning_param()},
    .deterministic = true,
    .run = run,
}};

}  // namespace
}  // namespace stopwatch::bench
