// Scenario — aggregate throughput of the shard-parallel event kernel.
//
// Runs one synthetic workload twice: on a single sim::Simulator core
// (sim_shards = 1 delegates straight to the sequential kernel) and on K
// cores under sim::ShardedSimulator's barrier protocol, and reports
// wall-clock ns/event for both plus their ratio. The workload is the
// cloud's shape in miniature: per-shard self-rescheduling timer chains
// (the vCPU-slice / beacon pattern that dominates event counts) with a
// fixed fraction of cross-shard handoffs riding the deterministic lane
// merge. Wall-clock measurements make this non-deterministic by
// construction; the identity CI lane therefore excludes it, and the
// nightly trend gate tracks its ns/event trajectory instead.
//
// NOTE: speedup_x reflects the cores the host actually has. On a 1-CPU
// container the parallel run measures barrier + lane overhead (ratio
// near or below 1); the >= 2x acceptance check lives in CI, on 4-core
// runners.
#include <chrono>
#include <cstdint>
#include <string>

#include "experiment/registry.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"

namespace stopwatch::bench {
namespace {

using experiment::ParamSpec;
using experiment::Result;
using experiment::ScenarioContext;

struct WorkloadStats {
  double wall_ns{0.0};
  std::uint64_t events{0};
  std::uint64_t crossed{0};
  std::uint64_t barriers{0};
  std::uint64_t adaptive_extensions{0};
};

/// Runs `chains` self-rescheduling chains per shard until `horizon`, every
/// 16th tick handing a no-op off to the next shard through the lane
/// protocol (with one shard that handoff degenerates to a self-schedule,
/// keeping the event count identical across shard counts).
WorkloadStats run_workload(int shards, int chains, Duration horizon,
                           Duration window, sim::WindowPolicy policy) {
  sim::ShardedConfig cfg;
  cfg.shards = shards;
  cfg.window = window;
  cfg.policy = policy;
  sim::ShardedSimulator sharded(cfg);

  const std::int64_t horizon_ns = horizon.ns;
  const Duration hop = Duration::nanos(2 * window.ns);
  // The only cross-shard traffic is the ring handoff to shard s+1, and
  // every handoff lands exactly `hop` past the sender's clock — declare
  // that floor so the adaptive policy can widen windows beyond the
  // conservative default; all other pairs never exchange events.
  for (int s = 0; shards > 1 && s < shards; ++s) {
    for (int d = 0; d < shards; ++d) {
      if (d == s) continue;
      if (d == (s + 1) % shards) {
        sharded.set_lookahead(s, d, hop);
      } else {
        sharded.set_lookahead_unreachable(s, d);
      }
    }
  }
  for (int s = 0; s < shards; ++s) {
    sim::Simulator& core = sharded.shard(s);
    for (int c = 0; c < chains; ++c) {
      // Chain state lives in the callback's capture; the tick delay walks
      // a fixed xorshift stream so every run does identical work.
      auto chain = std::make_shared<sim::Task>();
      auto x = static_cast<std::uint64_t>(s * 1000 + c) *
                   0x9E3779B97F4A7C15ULL |
               1ULL;
      *chain = [&sharded, own = &core, chain, x, s, shards, horizon_ns,
                hop]() mutable {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        if (x % 16 == 0) {
          sharded.cross_schedule(s, (s + 1) % shards, own->now() + hop, [] {});
        }
        const auto delay = Duration::nanos(200 + static_cast<std::int64_t>(
                                                     x % 400));
        if (own->now().ns + delay.ns < horizon_ns) {
          own->schedule_after(delay, [chain] { (*chain)(); });
        }
      };
      core.schedule_at(RealTime::nanos(100 + c), [chain] { (*chain)(); });
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  sharded.run_until(RealTime::nanos(horizon_ns));
  const auto t1 = std::chrono::steady_clock::now();

  WorkloadStats stats;
  stats.wall_ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
  stats.events = sharded.events_executed();
  stats.crossed = sharded.cross_scheduled();
  stats.barriers = sharded.barriers();
  stats.adaptive_extensions = sharded.adaptive_extensions();
  return stats;
}

Result run(const ScenarioContext& ctx) {
  const int shards = ctx.param_int("shards");
  const int chains = ctx.param_int("chains_per_shard");
  const auto horizon =
      Duration::from_seconds_f(ctx.param("horizon_ms") / 1000.0);
  const Duration window = Duration::micros(20);
  const sim::WindowPolicy policy =
      ctx.param_choice("shard_window") == "fixed" ? sim::WindowPolicy::kFixed
                                                  : sim::WindowPolicy::kAdaptive;

  // Same aggregate chain count on both kernels: the sequential run hosts
  // all shards * chains chains on its one core.
  const WorkloadStats seq =
      run_workload(1, shards * chains, horizon, window, policy);
  const WorkloadStats par =
      run_workload(shards, chains, horizon, window, policy);

  Result result("simulator_parallel_shards");
  result.add_metric("shards", shards, "cores");
  result.add_metric("events_total", static_cast<double>(par.events), "events");
  result.add_metric("cross_shard_events", static_cast<double>(par.crossed),
                    "events");
  result.add_metric("barriers", static_cast<double>(par.barriers), "windows");
  result.add_metric("adaptive_extensions",
                    static_cast<double>(par.adaptive_extensions), "windows");
  result.add_metric("ns_per_event_sequential",
                    seq.wall_ns / static_cast<double>(seq.events), "ns/event");
  result.add_metric("ns_per_event_parallel",
                    par.wall_ns / static_cast<double>(par.events), "ns/event");
  result.add_metric("speedup_x",
                    (seq.wall_ns / static_cast<double>(seq.events)) /
                        (par.wall_ns / static_cast<double>(par.events)),
                    "x");

  result.set_note(
      "Aggregate shard-parallel kernel throughput vs the sequential kernel "
      "on the same workload; speedup_x is bounded by the host's core count "
      "-- compare trends per runner class, not bytes.");
  return result;
}

[[maybe_unused]] const experiment::ScenarioRegistrar kRegistrar{{
    .name = "simulator_parallel_shards",
    .description =
        "Shard-parallel event kernel throughput: K timer-wheel cores under "
        "barrier windows + deterministic lane merge vs one sequential core "
        "on the same chain workload",
    .params = {ParamSpec{"shards", "simulator cores for the parallel run",
                         4.0, 4.0}
                   .with_int_range(2, 64),
               ParamSpec{"chains_per_shard",
                         "self-rescheduling timer chains per core", 64.0, 16.0}
                   .with_int_range(1, 4096),
               ParamSpec{"horizon_ms", "simulated milliseconds", 40.0, 4.0}
                   .with_range(0.1, 10000),
               ParamSpec::enumeration(
                   "shard_window", "barrier window policy", "adaptive",
                   {"fixed", "adaptive"})},
    .deterministic = false,
    .run = run,
}};

}  // namespace
}  // namespace stopwatch::bench
