// Scenario E7 — Paper Fig. 8 (Appendix): expected delay induced by
// StopWatch's median versus additive uniform noise U(0, b) calibrated to
// equal defensive strength (the same observations needed at each
// confidence). Δn is chosen so Pr[|X1 - X1'| <= Δn] >= 0.9999, as in the
// paper.
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "experiment/registry.hpp"
#include "stats/detection.hpp"
#include "stats/distribution.hpp"
#include "stats/order_statistics.hpp"

namespace stopwatch::bench {
namespace {

using experiment::ParamSpec;
using experiment::Result;
using experiment::ScenarioContext;
using namespace stopwatch::stats;

/// Pr[|X - X'| > d] for X ~ Exp(l1), X' ~ Exp(l2), independent.
double tail_abs_diff(double l1, double l2, double d) {
  return l2 / (l1 + l2) * std::exp(-l1 * d) +
         l1 / (l1 + l2) * std::exp(-l2 * d);
}

double solve_delta_n(double l1, double l2, double eps = 1e-4) {
  double lo = 0.0;
  double hi = 1.0;
  while (tail_abs_diff(l1, l2, hi) > eps) hi *= 2.0;
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (tail_abs_diff(l1, l2, mid) > eps) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

struct MedianSetting {
  std::shared_ptr<Exponential> base{std::make_shared<Exponential>(1.0)};
  std::shared_ptr<Exponential> victim;

  explicit MedianSetting(double lambda_victim)
      : victim(std::make_shared<Exponential>(lambda_victim)) {}

  [[nodiscard]] double null_cdf(double x) const {
    const double f = base->cdf(x);
    return median_of_three_cdf(f, f, f);
  }
  [[nodiscard]] double alt_cdf(double x) const {
    return median_of_three_cdf(victim->cdf(x), base->cdf(x), base->cdf(x));
  }
};

/// Observations needed to distinguish Exp(1)+U(0,b) from Exp(λ')+U(0,b).
long noise_observations(double lambda_victim, double b, double confidence,
                        int conv_points) {
  auto x = std::make_shared<Exponential>(1.0);
  auto xv = std::make_shared<Exponential>(lambda_victim);
  auto noise = std::make_shared<Uniform>(0.0, b);
  const SumOfIndependent null_d(x, noise, conv_points);
  const SumOfIndependent alt_d(xv, noise, conv_points);
  const ChiSquaredDetector det([&null_d](double v) { return null_d.cdf(v); },
                               [&alt_d](double v) { return alt_d.cdf(v); },
                               0.0, 30.0 + b);
  return det.observations_needed(confidence);
}

/// Minimum b giving at least `target` observations at `confidence`.
double calibrate_noise(double lambda_victim, long target, double confidence,
                       int iters, int conv_points) {
  double lo = 0.01;
  double hi = 1.0;
  while (noise_observations(lambda_victim, hi, confidence, conv_points) <
         target) {
    hi *= 2.0;
    if (hi > 4096.0) return hi;  // cap: noise cannot reach the target
  }
  for (int i = 0; i < iters; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (noise_observations(lambda_victim, mid, confidence, conv_points) <
        target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

/// Adds one panel (one victim λ') and returns noise-delay / StopWatch-delay
/// at the highest confidence for the cross-panel comparison.
double add_setting(Result& result, const std::string& prefix,
                   double lambda_victim, const std::vector<double>& confs,
                   int iters, int conv_points) {
  const MedianSetting s(lambda_victim);
  const double delta_n = solve_delta_n(1.0, lambda_victim);
  const ChiSquaredDetector median_det(
      [&s](double x) { return s.null_cdf(x); },
      [&s](double x) { return s.alt_cdf(x); }, 0.0, 30.0);

  // Expected values of the medians (numeric integration of the CDFs).
  const double e_med_null =
      mean_from_cdf([&s](double x) { return s.null_cdf(x); }, 60.0);
  const double e_med_victim =
      mean_from_cdf([&s](double x) { return s.alt_cdf(x); }, 60.0);

  result.add_metric(prefix + "_delta_n", delta_n, "time units");
  std::vector<double> n_sw_series;
  std::vector<double> noise_b_series;
  std::vector<double> noise_delay_series;
  std::vector<double> stopwatch_delay_series;
  double ratio_last = 0.0;
  for (const double conf : confs) {
    const long n_sw = median_det.observations_needed(conf);
    const double b =
        calibrate_noise(lambda_victim, n_sw, conf, iters, conv_points);
    n_sw_series.push_back(static_cast<double>(n_sw));
    noise_b_series.push_back(b);
    noise_delay_series.push_back(1.0 + b / 2.0);
    stopwatch_delay_series.push_back(e_med_null + delta_n);
    ratio_last = (1.0 + b / 2.0) / (e_med_null + delta_n);
  }
  result.add_series(prefix + "_confidence", "", confs);
  result.add_series(prefix + "_obs_needed_stopwatch", "observations",
                    n_sw_series);
  result.add_series(prefix + "_calibrated_noise_b", "time units",
                    noise_b_series);
  result.add_series(prefix + "_expected_delay_noise", "time units",
                    noise_delay_series);
  result.add_series(prefix + "_expected_delay_stopwatch", "time units",
                    stopwatch_delay_series);
  result.add_metric(prefix + "_expected_median_null", e_med_null,
                    "time units");
  result.add_metric(prefix + "_expected_median_victim", e_med_victim,
                    "time units");
  result.add_metric(prefix + "_noise_over_stopwatch_delay", ratio_last, "x");
  return ratio_last;
}

Result run(const ScenarioContext& ctx) {
  const int iters = ctx.param_int("calibration_iters");
  const int conv_points = ctx.param_int("convolution_points");
  const std::vector<double> confs =
      ctx.smoke() ? std::vector<double>{0.90, 0.99}
                  : std::vector<double>{0.70, 0.80, 0.90, 0.99};

  Result result("fig8_noise_comparison");
  const double distinct =
      add_setting(result, "fig8a", 0.5, confs, iters, conv_points);
  const double close =
      add_setting(result, "fig8b", 10.0 / 11.0, confs, iters, conv_points);
  result.set_note(
      "Paper shape check (Appendix): the median's delay scales better than "
      "equal-strength uniform noise as victim distinctiveness grows — "
      "noise/StopWatch delay is " +
      std::to_string(close) + "x at lambda'=10/11 vs " +
      std::to_string(distinct) + "x at lambda'=1/2.");
  return result;
}

[[maybe_unused]] const experiment::ScenarioRegistrar kRegistrar{{
    .name = "fig8_noise_comparison",
    .description =
        "Fig. 8: expected delay of StopWatch's median vs equal-strength "
        "additive uniform noise",
    .params = {ParamSpec{"calibration_iters",
                         "bisection iterations when calibrating noise b",
                         40.0, 10.0}.with_int_range(1, 1000),
               ParamSpec{"convolution_points",
                         "grid points for the Exp+Uniform convolution", 256.0,
                         96.0}.with_int_range(8, 100000)},
    .deterministic = true,
    .run = run,
}};

}  // namespace
}  // namespace stopwatch::bench
