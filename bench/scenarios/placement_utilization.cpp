// Scenario E8 — Paper Sec. VIII (Theorems 1 & 2): cloud utilization under
// StopWatch's placement constraint (replica triples = edge-disjoint
// triangles of K_n). Validates every constructed placement; wall-clock
// construction time is deliberately NOT a metric here (see the microbench
// scenario) so this scenario stays byte-deterministic.
#include <algorithm>
#include <vector>

#include "experiment/registry.hpp"
#include "placement/placement.hpp"

namespace stopwatch::bench {
namespace {

using experiment::ParamSpec;
using experiment::Result;
using experiment::ScenarioContext;
using namespace stopwatch::placement;

Result run(const ScenarioContext& ctx) {
  const int max_n = ctx.param_int("max_n");

  Result result("placement_utilization");

  // Theorem 1: maximum edge-disjoint triangle packings of K_n.
  std::vector<double> thm1_n;
  std::vector<double> thm1_vms;
  std::vector<double> thm1_edge_fraction;
  for (const int n : {9, 15, 21, 33, 45, 63, 99, 201}) {
    if (n > max_n) break;
    const long k = max_triangle_packing(n);
    const double edges = static_cast<double>(n) * (n - 1) / 2.0;
    thm1_n.push_back(n);
    thm1_vms.push_back(static_cast<double>(k));
    thm1_edge_fraction.push_back(3.0 * static_cast<double>(k) / edges);
  }
  result.add_series("thm1_n", "machines", thm1_n);
  result.add_series("thm1_max_vms", "VMs", thm1_vms);
  result.add_series("thm1_edge_fraction_used", "", thm1_edge_fraction);

  // Theorem 2: constructive placement at n = 21 for every capacity c
  // (covers all residue classes of c mod 3).
  int thm2_invalid = 0;
  std::vector<double> thm2_c;
  std::vector<double> thm2_bound;
  std::vector<double> thm2_placed;
  for (int c = 1; c <= 10; ++c) {
    const auto placement = theorem2_placement(21, c);
    if (!valid_placement(placement, 21, c)) ++thm2_invalid;
    thm2_c.push_back(c);
    thm2_bound.push_back(static_cast<double>(theorem2_bound(21, c)));
    thm2_placed.push_back(static_cast<double>(placement.size()));
  }
  result.add_series("thm2_n21_capacity", "VMs/machine", thm2_c);
  result.add_series("thm2_n21_bound", "VMs", thm2_bound);
  result.add_series("thm2_n21_placed", "VMs", thm2_placed);
  result.add_metric("thm2_n21_invalid_placements",
                    static_cast<double>(thm2_invalid), "placements");

  // Theorem 2 at scale, full capacity c = (n-1)/2: utilization improvement
  // over isolation (one VM per machine).
  int scale_invalid = 0;
  double improvement_at_largest = 0.0;
  std::vector<double> scale_n;
  std::vector<double> scale_placed;
  std::vector<double> scale_improvement;
  for (const int n : {9, 21, 45, 99, 201, 501}) {
    if (n > max_n) break;
    const int c = (n - 1) / 2;
    const auto placement = theorem2_placement(n, c);
    if (!valid_placement(placement, n, c)) ++scale_invalid;
    const double improvement = static_cast<double>(placement.size()) / n;
    improvement_at_largest = improvement;
    scale_n.push_back(n);
    scale_placed.push_back(static_cast<double>(placement.size()));
    scale_improvement.push_back(improvement);
  }
  result.add_series("thm2_scale_n", "machines", scale_n);
  result.add_series("thm2_scale_placed", "VMs", scale_placed);
  result.add_series("thm2_scale_improvement_over_isolation", "x",
                    scale_improvement);
  result.add_metric("thm2_scale_invalid_placements",
                    static_cast<double>(scale_invalid), "placements");
  result.add_metric("improvement_over_isolation_at_largest_n",
                    improvement_at_largest, "x");

  // Greedy packing for general n (the practical fallback).
  double min_fraction = 1.0;
  std::vector<double> greedy_n;
  std::vector<double> greedy_fraction;
  for (const int n : {10, 16, 20, 32, 50, 64, 100}) {
    if (n > max_n) break;
    const auto packing = greedy_packing(n);
    const long bound = max_triangle_packing(n);
    const double fraction =
        static_cast<double>(packing.size()) / static_cast<double>(bound);
    min_fraction = std::min(min_fraction, fraction);
    greedy_n.push_back(n);
    greedy_fraction.push_back(fraction);
  }
  result.add_series("greedy_n", "machines", greedy_n);
  result.add_series("greedy_fraction_of_bound", "", greedy_fraction);
  result.add_metric("greedy_min_fraction_of_bound", min_fraction, "");

  result.set_note(
      "Paper shape check: Theta(cn) guest VMs vs n under isolation — at "
      "full capacity the cloud hosts (n-1)/6 times more guests; every "
      "constructed placement validates.");
  return result;
}

[[maybe_unused]] const experiment::ScenarioRegistrar kRegistrar{{
    .name = "placement_utilization",
    .description =
        "Sec. VIII: replica placement utilization (Theorem 1 packing bound, "
        "Theorem 2 construction, greedy fallback), all placements validated",
    .params = {ParamSpec{"max_n", "largest machine count exercised", 501.0,
                         99.0}.with_int_range(9, 10000)},
    .deterministic = true,
    .run = run,
}};

}  // namespace
}  // namespace stopwatch::bench
