// Scenario E11 — Ablation: why the *median*?
//
// The paper argues (Secs. II, III) that prior replication systems let one
// replica dictate timing — which simply copies a coresident victim's signal
// to all replicas — and that the median of three is the right aggregate.
// Replays the Fig. 4 experiment under four aggregation rules: median
// (StopWatch), min, max, and leader-dictates (with the leader chosen
// adversarially as the victim-coresident machine).
#include <string>

#include "bench_util.hpp"
#include "experiment/registry.hpp"

namespace stopwatch::bench {
namespace {

using experiment::ParamSpec;
using experiment::Result;
using experiment::ScenarioContext;

struct Outcome {
  long obs99{0};
  double mean_wait_ms{0};
};

Outcome evaluate(hypervisor::AggregationRule rule, const ScenarioContext& ctx) {
  TimingScenarioConfig base;
  base.run_time = Duration::seconds(ctx.param("run_time_s"));
  base.seed = ctx.seed() ^ 61;
  base.aggregation = rule;
  // Adversarial leader: the machine shared with the victim (index r-1).
  base.leader_machine = static_cast<std::uint32_t>(base.replica_count - 1);

  TimingScenarioConfig clean = base;
  clean.victim_present = false;
  TimingScenarioConfig vic = base;
  vic.victim_present = true;

  const auto r_clean = run_timing_scenario(clean);
  const auto r_vic = run_timing_scenario(vic);
  Outcome out;
  out.obs99 = make_detector(r_clean.inter_arrival_ms, r_vic.inter_arrival_ms,
                            ctx.param_choice("binning"))
                  .observations_needed(0.99);
  out.mean_wait_ms = r_clean.median_margin_ms.empty()
                         ? 0.0
                         : stats::summarize(r_clean.median_margin_ms).mean;
  return out;
}

Result run(const ScenarioContext& ctx) {
  Result result("ablation_aggregation");
  const struct {
    const char* name;
    hypervisor::AggregationRule rule;
  } rules[] = {
      {"median", hypervisor::AggregationRule::kMedian},
      {"min", hypervisor::AggregationRule::kMin},
      {"max", hypervisor::AggregationRule::kMax},
      {"leader", hypervisor::AggregationRule::kLeader},
  };
  // "all" sweeps every rule and adds the cross-rule shape check; naming a
  // single rule evaluates just that aggregation (the CLI-exposed axis).
  const std::string& selected = ctx.param_choice("aggregation");
  long median_obs99 = 0;
  for (const auto& [name, rule] : rules) {
    if (selected != "all" && selected != name) continue;
    const Outcome out = evaluate(rule, ctx);
    if (rule == hypervisor::AggregationRule::kMedian) {
      median_obs99 = out.obs99;
    }
    result.add_metric(std::string(name) + "_obs99",
                      static_cast<double>(out.obs99), "observations");
    result.add_metric(std::string(name) + "_mean_slack", out.mean_wait_ms,
                      "ms");
  }
  if (selected == "all") {
    result.add_metric("median_obs99_is_max",
                      median_obs99 >= result.metric("min_obs99") &&
                              median_obs99 >= result.metric("max_obs99") &&
                              median_obs99 >= result.metric("leader_obs99")
                          ? 1.0
                          : 0.0,
                      "bool");
  }
  result.set_note(
      "Design-choice check: the median needs the most attacker observations; "
      "min and an adversarial leader expose the victim's host directly; max "
      "pays more delivery slack without beating the median's protection.");
  return result;
}

[[maybe_unused]] const experiment::ScenarioRegistrar kRegistrar{{
    .name = "ablation_aggregation",
    .description =
        "Ablation: delivery-time aggregation rule (median vs min/max/"
        "adversarial leader) on the Fig. 4 timing channel",
    .params = {ParamSpec{"run_time_s", "simulated seconds per run", 30.0,
                         5.0}.with_range(0.01, 3600),
               ParamSpec::enumeration(
                   "aggregation",
                   "delivery-time aggregation rule to evaluate", "all",
                   {"all", "median", "min", "max", "leader"}),
               binning_param()},
    .deterministic = true,
    .run = run,
}};

}  // namespace
}  // namespace stopwatch::bench
