// Scenario E14 — Paper Sec. VIII at cloud scale, end to end.
//
// placement_utilization reproduces Theorems 1 and 2 analytically; this
// scenario actually *runs* the resulting cloud. It places Θ(n²) replica
// sets (every triangle of a full-capacity Theorem 2 placement, 41,750 VMs
// at n = 501) over the lazily wired sharded topology, drives a sampled
// subset of guests with real request traffic through the whole
// ingress → replicated VMMs → median egress pipeline, and cross-checks the
// structure the running cloud exhibits against the analytic numbers:
//
//  * utilization: VMs placed per machine vs the Theorem 2 bound — the
//    quantity placement_utilization reports as
//    improvement_over_isolation_at_largest_n (exact agreement required);
//  * co-residence: the probability two uniformly drawn VMs share a host,
//    sampled over the placement table vs computed exactly from machine
//    occupancy (agreement within 25% relative error at the default 20k
//    sampled pairs; the estimator's rel. sigma is ~5%);
//  * scale: only driven VMs materialize replicas (lazy wiring), every
//    driven replica runs on exactly its assigned machine, replicas stay
//    deterministic, and the egress releases every echoed reply.
#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "core/cloud.hpp"
#include "experiment/registry.hpp"
#include "obs/profiler.hpp"
#include "placement/placement.hpp"
#include "sim/sharded.hpp"

namespace stopwatch::bench {
namespace {

using experiment::ParamSpec;
using experiment::Result;
using experiment::ScenarioContext;

/// Echoes every request straight back to its sender — the minimal guest
/// that exercises ingress replication and median egress release.
class EchoProgram final : public vm::GuestProgram {
 public:
  void on_boot(vm::GuestApi&) override {}
  void on_timer_tick(vm::GuestApi&, std::uint64_t) override {}
  void on_packet(vm::GuestApi& api, const net::Packet& pkt) override {
    if (pkt.kind != net::PacketKind::kRequest) return;
    net::Packet reply;
    reply.dst = pkt.src;
    reply.kind = net::PacketKind::kData;
    reply.seq = pkt.seq;
    reply.size_bytes = 120;
    api.send_packet(reply);
  }
};

Result run(const ScenarioContext& ctx) {
  const int n = ctx.param_int("machines");
  const int driven_target = ctx.param_int("driven_vms");
  const double run_time_s = ctx.param("run_time_s");
  const double rate_hz = ctx.param("request_rate_hz");
  const int pair_samples = ctx.param_int("pair_samples");
  const std::string& mode = ctx.param_choice("placement");

  // Full-capacity placement: Θ(n²) VMs over n machines.
  const int c = (n - 1) / 2;
  std::vector<placement::Triangle> triangles;
  {
    OBS_PROF_SCOPE("scenario.placement");
    if (mode == "theorem2") {
      SW_EXPECTS_MSG(n % 6 == 3,
                     "placement=theorem2 requires machines = 3 (mod 6), got " +
                         std::to_string(n));
      triangles = placement::theorem2_placement(n, c);
    } else {
      triangles = placement::greedy_packing(n, c);
    }
  }
  // Function-level umbrella: everything from here on that is not inside a
  // more specific scope (setup, drive, the kernel phases...) lands in
  // scenario.analysis self time — placement validation, co-residence
  // sampling, post-run measurement, and the cloud teardown. Children
  // subtract, so nothing is double counted and attribution stays >= 90%.
  OBS_PROF_SCOPE("scenario.analysis");
  const auto k = static_cast<long>(triangles.size());

  Result result("placement_e2e");
  result.add_metric("machines", n, "machines");
  result.add_metric("vms_placed", static_cast<double>(k), "VMs");
  result.add_metric("placement_valid",
                    placement::valid_placement(triangles, n, c) ? 1.0 : 0.0,
                    "bool");

  // --- Analytic cross-checks against placement_utilization ---
  const double improvement = static_cast<double>(k) / n;
  result.add_metric("improvement_over_isolation", improvement, "x");
  if (mode == "theorem2") {
    const double analytic =
        static_cast<double>(placement::theorem2_bound(n, c)) / n;
    result.add_metric("analytic_improvement", analytic, "x");
    // Same quantity placement_utilization reports at its largest n; the
    // construction must hit the bound exactly.
    result.add_metric("agrees_with_placement_utilization",
                      improvement == analytic ? 1.0 : 0.0, "bool");
  }

  // Exact co-residence probability from machine occupancy: triangles are
  // edge-disjoint, so two VMs share at most one machine and the pair count
  // is exactly sum_m C(occ_m, 2).
  const std::vector<int> occ = placement::occupancy(triangles, n);
  double coresident_pairs = 0.0;
  for (const int o : occ) {
    coresident_pairs += static_cast<double>(o) * (o - 1) / 2.0;
  }
  const double total_pairs = static_cast<double>(k) * (k - 1) / 2.0;
  const double p_analytic = coresident_pairs / total_pairs;
  result.add_metric("coresidence_analytic", p_analytic, "probability");

  // Sampled estimate over the placement table (what a measurement over
  // uniformly drawn guest pairs would see).
  Rng pair_rng(SplitMix64(ctx.seed() ^ 0xC0DE51DEULL).next());
  long shared = 0;
  for (int s = 0; s < pair_samples; ++s) {
    const auto i =
        static_cast<std::size_t>(pair_rng.uniform_int(0, k - 1));
    auto j = static_cast<std::size_t>(pair_rng.uniform_int(0, k - 2));
    if (j >= i) ++j;
    const placement::Triangle& a = triangles[i];
    const placement::Triangle& b = triangles[j];
    const int av[3] = {a.a, a.b, a.c};
    const int bv[3] = {b.a, b.b, b.c};
    bool hit = false;
    for (const int x : av) {
      for (const int y : bv) hit = hit || x == y;
    }
    shared += hit ? 1 : 0;
  }
  const double p_measured = static_cast<double>(shared) / pair_samples;
  result.add_metric("coresidence_measured", p_measured, "probability");
  const double rel_error = std::abs(p_measured - p_analytic) / p_analytic;
  result.add_metric("coresidence_rel_error", rel_error, "");
  result.add_metric("coresidence_within_tolerance",
                    rel_error <= 0.25 ? 1.0 : 0.0, "bool");

  // --- The cloud itself: register every placement, drive a sample ---
  core::CloudConfig cfg;
  cfg.seed = ctx.seed();
  cfg.policy = core::Policy::kStopWatch;
  cfg.replica_count = 3;
  cfg.machine_count = n;
  cfg.wiring = core::WiringMode::kLazy;
  cfg.sim_shards = ctx.param_int("sim_shards");
  cfg.shard_window_policy = ctx.param_choice("shard_window") == "fixed"
                                ? sim::WindowPolicy::kFixed
                                : sim::WindowPolicy::kAdaptive;

  core::Cloud cloud(cfg);
  std::vector<core::VmHandle> vms;
  {
    OBS_PROF_SCOPE("scenario.setup");
    vms.reserve(static_cast<std::size_t>(k));
    for (const placement::Triangle& t : triangles) {
      vms.push_back(
          cloud.add_vm("vm" + std::to_string(vms.size()),
                       [] { return std::make_unique<EchoProgram>(); },
                       {t.a, t.b, t.c}));
    }
  }

  std::map<std::uint32_t, long> replies_by_addr;
  const NodeId client = cloud.add_external_node(
      "client", [&replies_by_addr](const net::Packet& pkt) {
        ++replies_by_addr[pkt.src.value];
      });

  // Driven subset: distinct VM indices drawn from the scenario stream.
  Rng drive_rng(SplitMix64(ctx.seed() ^ 0xD21BE2ULL).next());
  std::set<std::size_t> driven;
  const auto driven_count =
      std::min<long>(driven_target, k);
  while (static_cast<long>(driven.size()) < driven_count) {
    driven.insert(static_cast<std::size_t>(drive_rng.uniform_int(0, k - 1)));
  }

  // Declare the driven sample the activation set and partition it across
  // the configured simulator cores. Called for sim_shards = 1 too, so both
  // shard counts take the same pre-materialization path and their reports
  // stay byte-identical.
  std::vector<core::VmHandle> driven_handles;
  driven_handles.reserve(driven.size());
  for (const std::size_t vm_index : driven) {
    driven_handles.push_back(vms[vm_index]);
  }
  {
    OBS_PROF_SCOPE("scenario.setup");
    cloud.activate_sharded(driven_handles);
    cloud.start();
  }

  // Poisson request stream per driven VM; scheduled up front so the whole
  // run is a pure function of the seed.
  long requests_sent = 0;
  {
    OBS_PROF_SCOPE("scenario.drive");
    for (const std::size_t vm_index : driven) {
      const core::VmHandle vm = vms[vm_index];
      double t_s = 0.001;  // small head start past start()
      std::uint64_t seq = 0;
      while (true) {
        t_s += drive_rng.exponential(rate_hz);
        if (t_s >= run_time_s) break;
        ++requests_sent;
        const std::uint64_t this_seq = seq++;
        cloud.simulator().schedule_at(
            RealTime{} + Duration::from_seconds_f(t_s),
            [&cloud, client, vm, this_seq] {
              net::Packet req;
              req.dst = cloud.vm_addr(vm);
              req.kind = net::PacketKind::kRequest;
              req.seq = this_seq;
              req.size_bytes = 90;
              cloud.send_external(client, req);
            });
      }
    }

    cloud.run_for(Duration::from_seconds_f(run_time_s) +
                  Duration::millis(500));
    cloud.halt_all();
  }

  // --- End-to-end measurements over the driven sample ---
  long replies_received = 0;
  for (const auto& [addr, count] : replies_by_addr) replies_received += count;
  std::uint64_t released = 0;
  long placement_errors = 0;
  long nondeterministic = 0;
  for (const std::size_t vm_index : driven) {
    const core::VmHandle vm = vms[vm_index];
    released += cloud.egress_stats(vm).packets_released;
    if (!cloud.replicas_deterministic(vm)) ++nondeterministic;
    const auto& assigned = cloud.topology().vm_machines(vm.index);
    for (int r = 0; r < cloud.replicas_of(vm); ++r) {
      const auto hosted =
          static_cast<int>(cloud.replica(vm, r).machine().id().value);
      if (hosted != assigned[static_cast<std::size_t>(r)]) ++placement_errors;
    }
  }

  result.add_metric("driven_vms", static_cast<double>(driven.size()), "VMs");
  result.add_metric("requests_sent", static_cast<double>(requests_sent),
                    "packets");
  result.add_metric("replies_received", static_cast<double>(replies_received),
                    "packets");
  result.add_metric("egress_packets_released", static_cast<double>(released),
                    "packets");
  result.add_metric("driven_replica_placement_errors",
                    static_cast<double>(placement_errors), "replicas");
  result.add_metric("nondeterministic_vms",
                    static_cast<double>(nondeterministic), "VMs");
  result.add_metric("divergences",
                    static_cast<double>(cloud.total_divergences()), "events");

  // --- Scale proof: lazy wiring only paid for the driven sample ---
  auto& topo = cloud.topology();
  result.add_metric("materialized_vms",
                    static_cast<double>(topo.materialized_vm_count()), "VMs");
  result.add_metric("lazy_materialized_only_driven",
                    topo.materialized_vm_count() == driven.size() ? 1.0 : 0.0,
                    "bool");
  result.add_metric(
      "materialized_machines",
      static_cast<double>(topo.machines().materialized_machines()),
      "machines");
  result.add_metric("machine_shards",
                    static_cast<double>(topo.machines().shard_count()),
                    "shards");
  result.add_metric("network_nodes",
                    static_cast<double>(cloud.network().node_count()), "nodes");
  result.add_metric("events_executed",
                    static_cast<double>(cloud.events_executed()), "events");
  result.add_metric("events_per_driven_vm",
                    static_cast<double>(cloud.events_executed()) /
                        static_cast<double>(driven.size()),
                    "events");

  // Reply counts per driven VM in VM-index order (figure-shaped evidence
  // that each sampled guest actually served traffic).
  std::vector<double> replies_series;
  for (const std::size_t vm_index : driven) {
    const auto it =
        replies_by_addr.find(cloud.vm_addr(vms[vm_index]).value);
    replies_series.push_back(
        it == replies_by_addr.end() ? 0.0 : static_cast<double>(it->second));
  }
  result.add_series("driven_vm_replies", "packets", replies_series);

  result.set_note(
      "Placement-scale shape check: Theta(n^2) VM placements register in "
      "O(VMs) with zero boot events; driven guests materialize on first "
      "packet, run on exactly their assigned machines, and the sampled "
      "co-residence probability matches the occupancy-exact value within "
      "25% relative error.");
  // Sim-time rollups (egress release latency) participate in cross-shard
  // byte-identity; they go in the `timeseries` block, not observability.
  for (auto& [series_name, series] : cloud.timeseries()) {
    result.add_timeseries(series_name, std::move(series));
  }
  // Kernel/fabric/policy counters for the `observability` block. Several
  // of them (barrier counts, placement of events in the wheel) legitimately
  // depend on sim_shards; cross-shard-count comparisons strip the block.
  result.set_observability(cloud.observability());
  return result;
}

[[maybe_unused]] const experiment::ScenarioRegistrar kRegistrar{{
    .name = "placement_e2e",
    .description =
        "Sec. VIII end to end: Theta(n^2) replica sets placed over a lazy "
        "sharded 501-machine topology, sampled guests driven through "
        "ingress/egress, co-residence cross-checked against the analytic "
        "placement numbers",
    .params =
        {ParamSpec{"machines", "cloud size n (theorem2 needs n = 3 mod 6)",
                   501.0, 501.0}
             .with_int_range(9, 2001),
         ParamSpec{"driven_vms", "sampled VMs driven with traffic", 24.0, 8.0}
             .with_int_range(1, 1000),
         ParamSpec{"run_time_s", "simulated seconds of request traffic", 2.0,
                   0.5}
             .with_range(0.05, 60),
         ParamSpec{"request_rate_hz", "requests/s per driven VM", 40.0, 25.0}
             .with_range(1, 1000),
         ParamSpec{"pair_samples", "VM pairs sampled for co-residence", 20000.0,
                   20000.0}
             .with_int_range(100, 1000000),
         ParamSpec::enumeration("placement", "placement construction",
                                "theorem2", {"theorem2", "greedy"}),
         ParamSpec{"sim_shards", "simulator cores (output is byte-identical "
                                 "across values)",
                   1.0, 1.0}
             .with_int_range(1, 64),
         ParamSpec::enumeration(
             "shard_window",
             "barrier window policy (output is byte-identical across "
             "policies)",
             "adaptive", {"fixed", "adaptive"})},
    .deterministic = true,
    .run = run,
}};

}  // namespace
}  // namespace stopwatch::bench
