// Scenario E5 — Paper Fig. 6: NFS server under an nhfsstone-like load.
// (a) average latency per operation vs offered load, baseline vs StopWatch;
// (b) average TCP packets per operation in both directions.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/cloud.hpp"
#include "experiment/registry.hpp"
#include "stats/summary.hpp"
#include "workload/nfs.hpp"

namespace stopwatch::bench {
namespace {

using experiment::ParamSpec;
using experiment::Result;
using experiment::ScenarioContext;

const std::vector<double> kRates = {25, 50, 100, 200, 400};

struct Row {
  double avg_latency_ms{0};
  double c2s_packets_per_op{0};
  double s2c_packets_per_op{0};
  std::uint64_t ops{0};
  obs::Snapshot obs;
};

Row run_nfs(core::Policy policy, double rate, double run_time_s,
            std::uint64_t seed, int sim_shards) {
  core::CloudConfig cfg;
  cfg.seed = seed;
  cfg.policy = policy;
  cfg.machine_count = 3;
  // Lazy wiring + an explicit activation set: the same code path whether
  // sim_shards is 1 or more, so the report is byte-identical across the
  // knob (the shard-identity test pins this).
  cfg.wiring = core::WiringMode::kLazy;
  cfg.sim_shards = sim_shards;
  // Server disk profile: write-cached / short-stroked (nhfsstone touches a
  // small working set), so the queue stays well under Δd at 400 ops/s.
  cfg.machine_template.disk_seek_min = Duration::micros(500);
  cfg.machine_template.disk_seek_max = Duration::millis(3);
  if (hypervisor::policy_replicated(policy)) {
    cfg.policy.stopwatch.delta_n = Duration::millis(7);
    cfg.policy.stopwatch.delta_d = Duration::millis(10);
  }
  // Campus-wireless client hop (the paper's T400 on 802.11): ~10 ms RTT.
  cfg.client_link.base_latency = Duration::millis(5);
  core::Cloud cloud(cfg);
  const core::VmHandle vm = cloud.add_vm(
      "nfs", [] { return std::make_unique<workload::NfsServerProgram>(); },
      {0, 1, 2});
  workload::NfsLoadGenerator gen(cloud, "nhfsstone", cloud.vm_addr(vm),
                                 /*processes=*/5, rate,
                                 workload::paper_nfs_mix(), seed ^ 0x9e37);
  cloud.activate_sharded({vm});
  cloud.start();
  gen.start();
  cloud.run_for(Duration::seconds(run_time_s));
  cloud.halt_all();

  Row row;
  row.ops = gen.ops_completed();
  if (!gen.latencies_ms().empty()) {
    row.avg_latency_ms = stats::summarize(gen.latencies_ms()).mean;
  }
  const auto& ts = gen.tcp_stats();
  const double ops = static_cast<double>(std::max<std::uint64_t>(1, row.ops));
  row.c2s_packets_per_op =
      static_cast<double>(ts.data_packets_sent + ts.ack_packets_sent +
                          ts.control_packets_sent) /
      ops;
  row.s2c_packets_per_op = static_cast<double>(ts.packets_received) / ops;
  row.obs = cloud.observability();
  return row;
}

Result run(const ScenarioContext& ctx) {
  const auto rate_count = static_cast<std::size_t>(ctx.param_int("rate_count"));
  const double run_time_s = ctx.param("run_time_s");
  const int sim_shards = ctx.param_int("sim_shards");
  // The mitigated arm is selectable (--param policy=...); the comparison
  // arm is always unmodified Xen. Metric names keep the historical
  // "stopwatch" labels for the mitigated arm regardless of the choice.
  const core::Policy mitigated =
      hypervisor::policy_kind_from_choice(ctx.param_choice("policy"));

  Result result("fig6_nfs");
  std::vector<double> rates;
  std::vector<double> base_lat;
  std::vector<double> sw_lat;
  std::vector<double> ratio;
  std::vector<double> c2s;
  std::vector<double> s2c;
  std::vector<double> ops_done;
  double max_ratio = 0.0;
  obs::Snapshot last_obs;
  for (std::size_t i = 0; i < rate_count; ++i) {
    const double rate = kRates[i];
    const Row base = run_nfs(core::Policy::kBaselineXen, rate, run_time_s,
                             ctx.seed() ^ 31, sim_shards);
    Row sw = run_nfs(mitigated, rate, run_time_s, ctx.seed() ^ 31, sim_shards);
    last_obs = std::move(sw.obs);
    const double r = sw.avg_latency_ms / base.avg_latency_ms;
    max_ratio = std::max(max_ratio, r);
    rates.push_back(rate);
    base_lat.push_back(base.avg_latency_ms);
    sw_lat.push_back(sw.avg_latency_ms);
    ratio.push_back(r);
    c2s.push_back(sw.c2s_packets_per_op);
    s2c.push_back(sw.s2c_packets_per_op);
    ops_done.push_back(static_cast<double>(sw.ops));
  }
  result.add_series("offered_load", "ops/s", rates);
  result.add_series("baseline_latency", "ms", base_lat);
  result.add_series("stopwatch_latency", "ms", sw_lat);
  result.add_series("latency_ratio", "x", ratio);
  result.add_series("client_to_server_packets_per_op", "packets", c2s);
  result.add_series("server_to_client_packets_per_op", "packets", s2c);
  result.add_series("ops_completed", "ops", ops_done);
  result.add_metric("max_latency_ratio", max_ratio, "x");
  result.add_metric("c2s_packets_per_op_first", c2s.front(), "packets");
  result.add_metric("c2s_packets_per_op_last", c2s.back(), "packets");
  result.set_note(
      "Paper shape check: latency increase stays below ~2.7x and "
      "client->server packets/op decrease with load (ACK coalescing across "
      "pipelined operations).");
  // Observability of the last (highest-load) mitigated run. Shard-count-
  // dependent counters live here, so cross-sim_shards comparisons strip
  // the block before diffing reports.
  result.set_observability(std::move(last_obs));
  return result;
}

[[maybe_unused]] const experiment::ScenarioRegistrar kRegistrar{{
    .name = "fig6_nfs",
    .description =
        "Fig. 6: NFS latency and packets/op vs offered load under an "
        "nhfsstone-like mix, baseline Xen vs StopWatch",
    .params = {ParamSpec{"run_time_s", "simulated seconds per load level",
                         15.0, 4.0}.with_range(0.01, 3600),
               ParamSpec{"rate_count",
                         "number of load levels from {25,50,100,200,400}",
                         5.0, 2.0}.with_int_range(1, 5),
               ParamSpec{"sim_shards", "simulator cores (output is "
                                       "byte-identical across values)",
                         1.0, 1.0}
                   .with_int_range(1, 64),
               policy_param()},
    .deterministic = true,
    .run = run,
}};

}  // namespace
}  // namespace stopwatch::bench
