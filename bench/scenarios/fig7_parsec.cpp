// Scenario E6 — Paper Fig. 7: PARSEC-like computational workloads.
// (a) average runtimes over repeated runs, baseline vs StopWatch;
// (b) disk interrupts per run — the paper shows StopWatch's absolute
//     overhead is directly correlated with the disk-interrupt count.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/cloud.hpp"
#include "experiment/registry.hpp"
#include "obs/metrics.hpp"
#include "stats/summary.hpp"
#include "workload/parsec.hpp"

namespace stopwatch::bench {
namespace {

using experiment::ParamSpec;
using experiment::Result;
using experiment::ScenarioContext;

struct AppResult {
  double avg_runtime_ms{0};
  std::uint64_t disk_interrupts{0};
  obs::Snapshot obs;
};

AppResult run_app(const workload::ParsecAppSpec& spec, core::Policy policy,
                  int runs, std::uint64_t seed, int sim_shards) {
  std::vector<double> runtimes;
  std::uint64_t disk_irqs = 0;
  obs::Snapshot last_obs;
  for (int run = 0; run < runs; ++run) {
    core::CloudConfig cfg;
    cfg.seed = seed + static_cast<std::uint64_t>(run);
    cfg.policy = policy;
    cfg.machine_count = 3;
    // Lazy wiring + an explicit activation set: the same code path whether
    // sim_shards is 1 or more, so the report is byte-identical across the
    // knob (the shard-identity test pins this).
    cfg.wiring = core::WiringMode::kLazy;
    cfg.sim_shards = sim_shards;
    // PARSEC profile: warm page cache / sequential readahead -> short
    // positioning times; Δd chosen as in Sec. VII-A (8-15 ms).
    cfg.machine_template.disk_seek_min = Duration::micros(500);
    cfg.machine_template.disk_seek_max = Duration::millis(3);
    if (hypervisor::policy_replicated(policy)) {
      cfg.policy.stopwatch.delta_d = Duration::millis(9);
    }
    core::Cloud cloud(cfg);

    bool done = false;
    RealTime finish{};
    const NodeId collector =
        cloud.add_external_node("collector", [&](const net::Packet&) {
          done = true;
          finish = cloud.simulator().now();
        });
    const core::VmHandle vm = cloud.add_vm(
        spec.name,
        [&spec, collector] {
          return std::make_unique<workload::ParsecProgram>(spec, collector, 1);
        },
        {0, 1, 2});
    cloud.activate_sharded({vm});
    cloud.start();
    while (!done) cloud.run_for(Duration::millis(200));
    runtimes.push_back(finish.to_seconds() * 1e3);
    disk_irqs = cloud.replica(vm, 0).guest_counters().disk_interrupts;
    cloud.halt_all();
    last_obs = cloud.observability();
  }
  return {stats::summarize(runtimes).mean, disk_irqs, std::move(last_obs)};
}

Result run(const ScenarioContext& ctx) {
  const auto& suite = workload::parsec_suite();
  const auto app_count = std::min(
      static_cast<std::size_t>(ctx.param_int("app_count")), suite.size());
  const int runs = ctx.param_int("runs_per_app");
  const int sim_shards = ctx.param_int("sim_shards");
  // The mitigated arm is selectable (--param policy=...); the comparison
  // arm is always unmodified Xen. Metric names keep the historical
  // "stopwatch" labels for the mitigated arm regardless of the choice.
  const core::Policy mitigated =
      hypervisor::policy_kind_from_choice(ctx.param_choice("policy"));

  Result result("fig7_parsec");
  double worst_ratio = 0.0;
  obs::Snapshot last_obs;
  for (std::size_t i = 0; i < app_count; ++i) {
    const auto& spec = suite[i];
    const AppResult base = run_app(spec, core::Policy::kBaselineXen, runs,
                                   ctx.seed() + 1000, sim_shards);
    AppResult sw =
        run_app(spec, mitigated, runs, ctx.seed() + 1000, sim_shards);
    last_obs = std::move(sw.obs);
    const double ratio = sw.avg_runtime_ms / base.avg_runtime_ms;
    worst_ratio = std::max(worst_ratio, ratio);
    result.add_metric(spec.name + "_baseline_runtime", base.avg_runtime_ms,
                      "ms");
    result.add_metric(spec.name + "_stopwatch_runtime", sw.avg_runtime_ms,
                      "ms");
    result.add_metric(spec.name + "_overhead_ratio", ratio, "x");
    result.add_metric(spec.name + "_disk_interrupts",
                      static_cast<double>(sw.disk_interrupts), "interrupts");
    result.add_metric(spec.name + "_paper_overhead_ratio",
                      spec.paper_stopwatch_ms / spec.paper_baseline_ms, "x");
  }
  result.add_metric("worst_overhead_ratio", worst_ratio, "x");
  result.set_note(
      "Paper shape check: overhead <= ~2.3x per app, and the absolute "
      "overhead tracks the disk-interrupt count (Fig. 7(b)).");
  // Last mitigated run's kernel/fabric counters. Shard-dependent counters
  // live here, so cross-sim_shards comparisons strip the block.
  result.set_observability(std::move(last_obs));
  return result;
}

[[maybe_unused]] const experiment::ScenarioRegistrar kRegistrar{{
    .name = "fig7_parsec",
    .description =
        "Fig. 7: PARSEC-like app runtimes and disk interrupts, baseline Xen "
        "vs StopWatch",
    .params = {ParamSpec{"app_count", "apps from the PARSEC-like suite", 5.0,
                         2.0}.with_int_range(1, 5),
               ParamSpec{"runs_per_app", "runs averaged per app", 5.0, 1.0}
                   .with_int_range(1, 100),
               ParamSpec{"sim_shards", "simulator cores (output is "
                                       "byte-identical across values)",
                         1.0, 1.0}
                   .with_int_range(1, 64),
               policy_param()},
    .deterministic = true,
    .run = run,
}};

}  // namespace
}  // namespace stopwatch::bench
