// Experiment E12 — Ablation: epoch-based virtual-clock resynchronization
// (Sec. IV-A).
//
// virt(instr) drifts from real time when the machine's instruction rate
// differs from the slope's assumption. The optional epoch mechanism
// exchanges (D_k, R_k) reports, picks the median, and rebases the clock
// with a clamped slope. Smaller epochs track real time better — but the
// paper warns that tighter coupling to real time risks re-opening the
// timing channel; "virt should be adjusted ... only with large I values".
#include <cstdio>

#include "bench_util.hpp"

using namespace stopwatch;
using namespace stopwatch::bench;

namespace {

struct Outcome {
  double drift_s{0};
  long obs99{0};
  std::uint64_t clean_divergences{0};
  std::uint64_t victim_divergences{0};
};

Outcome evaluate(bool resync, std::uint64_t epoch_instr) {
  TimingScenarioConfig base;
  base.run_time = Duration::seconds(30);
  base.seed = 51;
  base.epoch_resync = resync;
  base.epoch_instr = epoch_instr;
  // The machines run 6% faster than the initial slope assumes, so the
  // uncorrected virtual clock drifts ahead of real time.
  base.base_ips = 1.06e9;
  base.slope_min = 0.80;
  base.slope_max = 1.20;

  TimingScenarioConfig clean = base;
  clean.victim_present = false;
  TimingScenarioConfig vic = base;
  vic.victim_present = true;

  const auto r_clean = run_timing_scenario(clean);
  const auto r_vic = run_timing_scenario(vic);
  Outcome out;
  out.drift_s = r_clean.clock_drift_s;
  out.obs99 = make_detector(r_clean.inter_arrival_ms, r_vic.inter_arrival_ms)
                  .observations_needed(0.99);
  out.clean_divergences = r_clean.divergences;
  out.victim_divergences = r_vic.divergences;
  return out;
}

}  // namespace

int main() {
  std::printf("=== E12: Ablation — epoch resynchronization of virt ===\n");
  std::printf("(machines run 6%% fast; 30 s runs; drift = |virt - real|)\n\n");
  std::printf("%16s %16s %20s %14s %14s\n", "epoch I", "drift (s)",
              "obs needed @0.99", "div (clean)", "div (victim)");

  const Outcome off = evaluate(false, 0);
  std::printf("%16s %16.3f %20ld %14llu %14llu\n", "disabled", off.drift_s,
              off.obs99,
              static_cast<unsigned long long>(off.clean_divergences),
              static_cast<unsigned long long>(off.victim_divergences));
  for (std::uint64_t epoch : {100'000'000ULL, 400'000'000ULL, 1'600'000'000ULL}) {
    const Outcome on = evaluate(true, epoch);
    std::printf("%13lluM %16.3f %20ld %14llu %14llu\n",
                static_cast<unsigned long long>(epoch / 1'000'000),
                on.drift_s, on.obs99,
                static_cast<unsigned long long>(on.clean_divergences),
                static_cast<unsigned long long>(on.victim_divergences));
  }

  std::printf(
      "\nDesign-choice check: resync bounds the drift that is unbounded\n"
      "when disabled, at no drift-free divergence (clean column). The\n"
      "victim column exposes a finding the paper's synchrony assumption\n"
      "glosses over: a replica marginalized by heavy coresident load cannot\n"
      "deliver its epoch reports in time, so its peers must skip epochs —\n"
      "another reason (besides the leak risk of tracking real time) to use\n"
      "epoch resync only with large I, as Sec. IV-A recommends.\n");
  return 0;
}
