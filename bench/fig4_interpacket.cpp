// Experiment E3 — Paper Fig. 4(a,b): measured virtual inter-packet delivery
// times at an attacker VM, with one replica coresident with a file-serving
// victim ("two baselines, one victim") versus no victim ("three baselines"),
// plus the chi-squared observations-needed comparison against unmodified
// Xen ("w/o StopWatch").
#include <cstdio>

#include "bench_util.hpp"

using namespace stopwatch;
using namespace stopwatch::bench;

namespace {

void print_cdf(const char* title, const stats::Ecdf& no_victim,
               const stats::Ecdf& with_victim) {
  std::printf("%s\n", title);
  std::printf("%16s %24s %30s\n", "inter-delivery(ms)",
              "Median of three baselines", "Median of two baselines,1 victim");
  for (double q :
       {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99}) {
    std::printf("   CDF=%4.2f  %17.3f %26.3f\n", q, no_victim.quantile(q),
                with_victim.quantile(q));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== E3: Fig. 4 — measured inter-packet delivery times ===\n");
  std::printf(
      "Attacker VM triple; victim file server coresident with one replica;\n"
      "~80 pkt/s background broadcast traffic (paper testbed: 50-100).\n\n");

  TimingScenarioConfig base;
  base.run_time = Duration::seconds(40);

  // StopWatch runs (virtual-time observations).
  TimingScenarioConfig sw_victim = base;
  sw_victim.stopwatch = true;
  sw_victim.victim_present = true;
  TimingScenarioConfig sw_clean = sw_victim;
  sw_clean.victim_present = false;

  const auto r_sw_victim = run_timing_scenario(sw_victim);
  const auto r_sw_clean = run_timing_scenario(sw_clean);

  // Baseline (unmodified Xen) runs (real-time observations).
  TimingScenarioConfig bx_victim = base;
  bx_victim.stopwatch = false;
  bx_victim.victim_present = true;
  TimingScenarioConfig bx_clean = bx_victim;
  bx_clean.victim_present = false;

  const auto r_bx_victim = run_timing_scenario(bx_victim);
  const auto r_bx_clean = run_timing_scenario(bx_clean);

  std::printf("samples: SW victim=%zu clean=%zu | Xen victim=%zu clean=%zu\n",
              r_sw_victim.inter_arrival_ms.size(),
              r_sw_clean.inter_arrival_ms.size(),
              r_bx_victim.inter_arrival_ms.size(),
              r_bx_clean.inter_arrival_ms.size());
  std::printf("replica determinism: %s; divergences: %llu\n\n",
              r_sw_victim.deterministic ? "OK" : "VIOLATED",
              static_cast<unsigned long long>(r_sw_victim.divergences +
                                              r_sw_clean.divergences));

  print_cdf("## Fig 4(a): virtual inter-packet delivery times (StopWatch)",
            stats::Ecdf(r_sw_clean.inter_arrival_ms),
            stats::Ecdf(r_sw_victim.inter_arrival_ms));

  std::printf("## Fig 4(b): observations needed to detect the victim\n\n");
  print_detection_table("w/ StopWatch:", r_sw_clean.inter_arrival_ms,
                        r_sw_victim.inter_arrival_ms);
  print_detection_table("w/o StopWatch (unmodified Xen):",
                        r_bx_clean.inter_arrival_ms,
                        r_bx_victim.inter_arrival_ms);

  const auto det_sw = make_detector(r_sw_clean.inter_arrival_ms,
                                    r_sw_victim.inter_arrival_ms);
  const auto det_bx = make_detector(r_bx_clean.inter_arrival_ms,
                                    r_bx_victim.inter_arrival_ms);
  const long sw99 = det_sw.observations_needed(0.99);
  const long bx99 = det_bx.observations_needed(0.99);
  std::printf(
      "Paper shape check: StopWatch strengthens the defense by an order of\n"
      "magnitude: at 0.99 confidence, %ld (w/) vs %ld (w/o) -> factor "
      "%.1fx\n",
      sw99, bx99, static_cast<double>(sw99) / static_cast<double>(bx99));
  return 0;
}
