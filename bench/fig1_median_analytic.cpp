// Experiment E1 — Paper Fig. 1(a,b,c): analytic justification for the median.
//
// Baseline replicas observe timings ~ Exp(λ=1); a replica coresident with the
// victim observes ~ Exp(λ'). We print:
//  (a) the CDFs of the baseline, victim, median-of-three-baselines, and
//      median-of-(two baselines + one victim) distributions (λ' = 1/2);
//  (b) the observations needed to reject the "no victim" null at each
//      confidence, with and without StopWatch, for λ' = 1/2;
//  (c) the same for λ' = 10/11.
#include <cstdio>
#include <memory>

#include "stats/detection.hpp"
#include "stats/distribution.hpp"
#include "stats/order_statistics.hpp"

namespace {

using namespace stopwatch::stats;

struct Curves {
  std::shared_ptr<Exponential> base;
  std::shared_ptr<Exponential> victim;

  explicit Curves(double lambda_victim)
      : base(std::make_shared<Exponential>(1.0)),
        victim(std::make_shared<Exponential>(lambda_victim)) {}

  [[nodiscard]] double median_three_baselines(double x) const {
    const double f = base->cdf(x);
    return median_of_three_cdf(f, f, f);
  }
  [[nodiscard]] double median_two_baselines_one_victim(double x) const {
    return median_of_three_cdf(victim->cdf(x), base->cdf(x), base->cdf(x));
  }
};

void print_fig1a(const Curves& c) {
  std::printf("## Fig 1(a): distribution of median; lambda'=1/2\n");
  std::printf("%8s %10s %10s %22s %28s\n", "x", "Baseline", "Victim",
              "Median(3 baselines)", "Median(2 baselines,1 victim)");
  for (double x = 0.0; x <= 6.0001; x += 0.5) {
    std::printf("%8.2f %10.4f %10.4f %22.4f %28.4f\n", x, c.base->cdf(x),
                c.victim->cdf(x), c.median_three_baselines(x),
                c.median_two_baselines_one_victim(x));
  }
  std::printf("\n");
}

void print_fig1bc(const Curves& c, const char* label) {
  const ChiSquaredDetector with_sw(
      [&c](double x) { return c.median_three_baselines(x); },
      [&c](double x) { return c.median_two_baselines_one_victim(x); }, 0.0,
      30.0);
  const ChiSquaredDetector without_sw(
      [&c](double x) { return c.base->cdf(x); },
      [&c](double x) { return c.victim->cdf(x); }, 0.0, 30.0);

  std::printf("## Fig 1(%s): observations needed to detect victim\n", label);
  std::printf("%12s %16s %16s %8s\n", "confidence", "w/ StopWatch",
              "w/o StopWatch", "ratio");
  for (double conf : paper_confidence_grid()) {
    const long with = with_sw.observations_needed(conf);
    const long without = without_sw.observations_needed(conf);
    std::printf("%12.2f %16ld %16ld %8.1f\n", conf, with, without,
                static_cast<double>(with) / static_cast<double>(without));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== E1: Fig. 1 — analytic justification for the median ===\n");
  std::printf("Baseline Exp(lambda=1); victim Exp(lambda')\n\n");

  const Curves far(0.5);
  print_fig1a(far);
  print_fig1bc(far, "b; lambda'=1/2");

  const Curves close(10.0 / 11.0);
  print_fig1bc(close, "c; lambda'=10/11");

  std::printf(
      "Paper shape check: (b) w/o StopWatch detects with ~1 observation,\n"
      "w/ StopWatch needs ~2 orders of magnitude more; (c) the gap widens\n"
      "as the victim's distribution approaches the baseline.\n");
  return 0;
}
