// Experiment E10 — Paper Sec. IX: collaborating attacker VMs.
//
// A second attacker VM induces load on machines hosting replicas of the
// first attacker VM, slowing them until they are marginalized from the
// median — the surviving proposals then reflect the victim-coresident
// replica. The paper's countermeasure: more replicas (3 -> 5) force the
// attacker to marginalize several machines at once.
#include <cstdio>

#include "bench_util.hpp"

using namespace stopwatch;
using namespace stopwatch::bench;

namespace {

long detect_at_99(const TimingScenarioConfig& base) {
  TimingScenarioConfig clean = base;
  clean.victim_present = false;
  TimingScenarioConfig vic = base;
  vic.victim_present = true;
  const auto r_clean = run_timing_scenario(clean);
  const auto r_vic = run_timing_scenario(vic);
  const auto det =
      make_detector(r_clean.inter_arrival_ms, r_vic.inter_arrival_ms);
  return det.observations_needed(0.99);
}

}  // namespace

int main() {
  std::printf("=== E10: Sec. IX — collaborating attacker VMs ===\n\n");
  std::printf("%10s %22s %26s\n", "replicas", "marginalized hosts",
              "obs needed @0.99 conf");

  struct Row {
    int replicas;
    int marginalized;
  };
  for (const Row row : {Row{3, 0}, Row{3, 1}, Row{3, 2}, Row{5, 0}, Row{5, 1},
                        Row{5, 2}, Row{5, 3}}) {
    TimingScenarioConfig tc;
    tc.replica_count = row.replicas;
    tc.run_time = Duration::seconds(30);
    tc.seed = 91;
    tc.marginalize_machines = row.marginalized;
    tc.marginalize_load = 2.0;  // the collaborating VM2's induced load
    const long n = detect_at_99(tc);
    std::printf("%10d %22d %26ld\n", row.replicas, row.marginalized, n);
  }

  std::printf(
      "\nPaper shape check: marginalizing hosts of a 3-replica VM weakens\n"
      "the defense (fewer observations needed); with 5 replicas the attacker\n"
      "must marginalize several hosts to regain the same advantage.\n");
  return 0;
}
