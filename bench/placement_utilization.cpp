// Experiment E8 — Paper Sec. VIII (Theorems 1 & 2): cloud utilization under
// StopWatch's placement constraint (replica triples = edge-disjoint
// triangles of K_n).
//
// Reports: the Theorem 1 maximum packing (Θ(n²) guest VMs), the Theorem 2
// constructive placement for capacity-constrained machines (all residue
// classes of c mod 3), the greedy packer for general n, validation of every
// placement, construction time, and the comparison against isolation
// (n machines -> n VMs).
#include <chrono>
#include <cstdio>

#include "placement/placement.hpp"

using namespace stopwatch::placement;

int main() {
  std::printf("=== E8: Sec. VIII — replica placement & utilization ===\n\n");

  std::printf("## Theorem 1: maximum edge-disjoint triangle packings of K_n\n");
  std::printf("%6s %14s %14s %18s\n", "n", "max VMs", "isolation",
              "edges of K_n used");
  for (int n : {9, 15, 21, 33, 45, 63, 99, 201}) {
    const long k = max_triangle_packing(n);
    const double edges = static_cast<double>(n) * (n - 1) / 2.0;
    std::printf("%6d %14ld %14d %17.1f%%\n", n, k, n,
                100.0 * 3.0 * static_cast<double>(k) / edges);
  }

  std::printf("\n## Theorem 2: constructive placement, n = 21 (c <= 10)\n");
  std::printf("%6s %10s %10s %10s %12s %12s\n", "c", "bound", "placed",
              "valid", "VMs/isol.", "cap. used");
  for (int c = 1; c <= 10; ++c) {
    const auto placement = theorem2_placement(21, c);
    const bool ok = valid_placement(placement, 21, c);
    std::printf("%6d %10ld %10zu %10s %12.2f %11.1f%%\n", c,
                theorem2_bound(21, c), placement.size(), ok ? "yes" : "NO",
                static_cast<double>(placement.size()) / 21.0,
                100.0 * 3.0 * static_cast<double>(placement.size()) /
                    (21.0 * c));
  }

  std::printf("\n## Theorem 2 at scale (c = (n-1)/2, full capacity)\n");
  std::printf("%6s %6s %12s %12s %14s %14s\n", "n", "c", "VMs placed",
              "isolation", "improvement", "build time");
  for (int n : {9, 21, 45, 99, 201, 501}) {
    const int c = (n - 1) / 2;
    const auto t0 = std::chrono::steady_clock::now();
    const auto placement = theorem2_placement(n, c);
    const auto t1 = std::chrono::steady_clock::now();
    const bool ok = valid_placement(placement, n, c);
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    std::printf("%6d %6d %12zu %12d %13.1fx %12.0fus%s\n", n, c,
                placement.size(), n,
                static_cast<double>(placement.size()) / n, us,
                ok ? "" : "  INVALID!");
  }

  std::printf("\n## Greedy packing for general n (practical fallback)\n");
  std::printf("%6s %14s %14s %12s\n", "n", "greedy VMs", "Thm 1 bound",
              "fraction");
  for (int n : {10, 16, 20, 32, 50, 64, 100}) {
    const auto packing = greedy_packing(n);
    const long bound = max_triangle_packing(n);
    std::printf("%6d %14zu %14ld %11.1f%%\n", n, packing.size(), bound,
                100.0 * static_cast<double>(packing.size()) /
                    static_cast<double>(bound));
  }

  std::printf(
      "\nPaper shape check: Theta(cn) guest VMs vs n under isolation — a\n"
      "cloud running StopWatch at full capacity hosts (n-1)/6 times more\n"
      "guests than one VM per machine.\n");
  return 0;
}
