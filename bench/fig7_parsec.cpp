// Experiment E6 — Paper Fig. 7: PARSEC-like computational workloads.
// (a) average runtimes over repeated runs, baseline vs StopWatch;
// (b) disk interrupts per run — the paper shows StopWatch's absolute
//     overhead is directly correlated with the disk-interrupt count.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/cloud.hpp"
#include "stats/summary.hpp"
#include "workload/parsec.hpp"

using namespace stopwatch;

namespace {

struct AppResult {
  double avg_runtime_ms{0};
  std::uint64_t disk_interrupts{0};
};

AppResult run_app(const workload::ParsecAppSpec& spec, core::Policy policy,
                  int runs) {
  std::vector<double> runtimes;
  std::uint64_t disk_irqs = 0;
  for (int run = 0; run < runs; ++run) {
    core::CloudConfig cfg;
    cfg.seed = 1000 + static_cast<std::uint64_t>(run);
    cfg.policy = policy;
    cfg.machine_count = 3;
    // PARSEC profile: warm page cache / sequential readahead -> short
    // positioning times; Δd chosen as in Sec. VII-A (8-15 ms).
    cfg.machine_template.disk_seek_min = Duration::micros(500);
    cfg.machine_template.disk_seek_max = Duration::millis(3);
    cfg.guest_template.delta_d = Duration::millis(9);
    core::Cloud cloud(cfg);

    bool done = false;
    RealTime finish{};
    const NodeId collector = cloud.add_external_node(
        "collector", [&](const net::Packet&) {
          done = true;
          finish = cloud.simulator().now();
        });
    const core::VmHandle vm = cloud.add_vm(
        spec.name,
        [&spec, collector] {
          return std::make_unique<workload::ParsecProgram>(spec, collector, 1);
        },
        {0, 1, 2});
    cloud.start();
    while (!done) cloud.run_for(Duration::millis(200));
    runtimes.push_back(finish.to_seconds() * 1e3);
    disk_irqs = cloud.replica(vm, 0).guest_counters().disk_interrupts;
    cloud.halt_all();
  }
  return {stats::summarize(runtimes).mean, disk_irqs};
}

}  // namespace

int main() {
  std::printf("=== E6: Fig. 7 — PARSEC applications ===\n\n");
  std::printf("%14s %11s %11s %7s | %11s %11s %7s | %9s %9s\n", "app",
              "base(ms)", "SW(ms)", "ratio", "paper base", "paper SW",
              "ratio", "disk irq", "paper");
  double worst_ratio = 0.0;
  for (const auto& spec : workload::parsec_suite()) {
    const AppResult base = run_app(spec, core::Policy::kBaselineXen, 5);
    const AppResult sw = run_app(spec, core::Policy::kStopWatch, 5);
    const double ratio = sw.avg_runtime_ms / base.avg_runtime_ms;
    const double paper_ratio = spec.paper_stopwatch_ms / spec.paper_baseline_ms;
    worst_ratio = std::max(worst_ratio, ratio);
    std::printf("%14s %11.0f %11.0f %7.2f | %11.0f %11.0f %7.2f | %9llu %9d\n",
                spec.name.c_str(), base.avg_runtime_ms, sw.avg_runtime_ms,
                ratio, spec.paper_baseline_ms, spec.paper_stopwatch_ms,
                paper_ratio, static_cast<unsigned long long>(sw.disk_interrupts),
                spec.paper_disk_interrupts);
  }
  std::printf(
      "\nPaper shape check: overhead <= ~2.3x (worst here %.2fx) and the\n"
      "absolute overhead tracks the disk-interrupt count (Fig. 7(b)).\n",
      worst_ratio);
  return 0;
}
