// Experiment E5 — Paper Fig. 6: NFS server under an nhfsstone-like load.
// (a) average latency per operation vs offered load, baseline vs StopWatch;
// (b) average TCP packets per operation, client->server and server->client.
//
// The paper reports < 2.7x latency increase, roughly logarithmic latency
// growth in offered rate, and client->server packets/op *decreasing* with
// load (ACK coalescing across pipelined operations).
#include <cstdio>
#include <memory>
#include <vector>

#include "core/cloud.hpp"
#include "stats/summary.hpp"
#include "workload/nfs.hpp"

using namespace stopwatch;

namespace {

struct Row {
  double rate{0};
  double avg_latency_ms{0};
  double c2s_packets_per_op{0};
  double s2c_packets_per_op{0};
  std::uint64_t ops{0};
};

Row run_nfs(core::Policy policy, double rate, std::uint64_t seed) {
  core::CloudConfig cfg;
  cfg.seed = seed;
  cfg.policy = policy;
  cfg.machine_count = 3;
  // Server disk profile: write-cached / short-stroked (nhfsstone touches a
  // small working set), so the queue stays well under Δd at 400 ops/s.
  cfg.machine_template.disk_seek_min = Duration::micros(500);
  cfg.machine_template.disk_seek_max = Duration::millis(3);
  cfg.guest_template.delta_n = Duration::millis(7);
  cfg.guest_template.delta_d = Duration::millis(10);
  // Campus-wireless client hop (the paper's T400 on 802.11): ~10 ms RTT.
  cfg.client_link.base_latency = Duration::millis(5);
  core::Cloud cloud(cfg);
  const core::VmHandle vm = cloud.add_vm(
      "nfs", [] { return std::make_unique<workload::NfsServerProgram>(); },
      {0, 1, 2});
  workload::NfsLoadGenerator gen(cloud, "nhfsstone", cloud.vm_addr(vm),
                                 /*processes=*/5, rate,
                                 workload::paper_nfs_mix(), seed ^ 0x9e37);
  cloud.start();
  gen.start();
  cloud.run_for(Duration::seconds(15));
  cloud.halt_all();

  Row row;
  row.rate = rate;
  row.ops = gen.ops_completed();
  if (!gen.latencies_ms().empty()) {
    row.avg_latency_ms = stats::summarize(gen.latencies_ms()).mean;
  }
  const auto& ts = gen.tcp_stats();
  const double ops = static_cast<double>(std::max<std::uint64_t>(1, row.ops));
  row.c2s_packets_per_op =
      static_cast<double>(ts.data_packets_sent + ts.ack_packets_sent +
                          ts.control_packets_sent) /
      ops;
  row.s2c_packets_per_op = static_cast<double>(ts.packets_received) / ops;
  return row;
}

}  // namespace

int main() {
  std::printf("=== E5: Fig. 6 — NFS with nhfsstone-like load ===\n");
  std::printf(
      "mix: 11.37%% setattr, 24.07%% lookup, 11.92%% write, 7.93%% getattr,\n"
      "     32.34%% read, 12.37%% create; 5 client processes (Sec. VII-C)\n\n");

  const std::vector<double> rates = {25, 50, 100, 200, 400};
  std::printf("%8s %14s %14s %8s %12s %12s %10s\n", "ops/s", "base lat(ms)",
              "SW lat(ms)", "ratio", "c2s pkts/op", "s2c pkts/op", "ops done");
  double max_ratio = 0.0;
  std::vector<double> c2s_series;
  for (double rate : rates) {
    const Row base = run_nfs(core::Policy::kBaselineXen, rate, 31);
    const Row sw = run_nfs(core::Policy::kStopWatch, rate, 31);
    const double ratio = sw.avg_latency_ms / base.avg_latency_ms;
    max_ratio = std::max(max_ratio, ratio);
    c2s_series.push_back(sw.c2s_packets_per_op);
    std::printf("%8.0f %14.2f %14.2f %8.2f %12.2f %12.2f %10llu\n", rate,
                base.avg_latency_ms, sw.avg_latency_ms, ratio,
                sw.c2s_packets_per_op, sw.s2c_packets_per_op,
                static_cast<unsigned long long>(sw.ops));
  }

  std::printf(
      "\nPaper shape check: latency increase stays below ~2.7x (max here: "
      "%.2fx);\nclient->server packets/op decrease with load (%.2f at 25/s "
      "-> %.2f at 400/s).\n",
      max_ratio, c2s_series.front(), c2s_series.back());
  return 0;
}
