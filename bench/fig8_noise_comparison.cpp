// Experiment E7 — Paper Fig. 8 (Appendix): expected delay induced by
// StopWatch's median versus additive uniform noise U(0, b), calibrated to
// equal defensive strength (the same number of observations needed at each
// confidence level). Δn is chosen so Pr[|X1 - X1'| <= Δn] >= 0.9999, as in
// the paper.
//
// The paper's conclusion: StopWatch's delay is flat in the required
// confidence, while equal-strength uniform noise grows (and crosses above)
// as confidence or victim distinctiveness rises.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "stats/detection.hpp"
#include "stats/distribution.hpp"
#include "stats/order_statistics.hpp"

using namespace stopwatch;
using namespace stopwatch::stats;

namespace {

/// Pr[|X - X'| > d] for X ~ Exp(l1), X' ~ Exp(l2), independent.
double tail_abs_diff(double l1, double l2, double d) {
  return l2 / (l1 + l2) * std::exp(-l1 * d) +
         l1 / (l1 + l2) * std::exp(-l2 * d);
}

double solve_delta_n(double l1, double l2, double eps = 1e-4) {
  double lo = 0.0, hi = 1.0;
  while (tail_abs_diff(l1, l2, hi) > eps) hi *= 2.0;
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (tail_abs_diff(l1, l2, mid) > eps) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

struct MedianSetting {
  std::shared_ptr<Exponential> base{std::make_shared<Exponential>(1.0)};
  std::shared_ptr<Exponential> victim;

  explicit MedianSetting(double lambda_victim)
      : victim(std::make_shared<Exponential>(lambda_victim)) {}

  [[nodiscard]] double null_cdf(double x) const {
    const double f = base->cdf(x);
    return median_of_three_cdf(f, f, f);
  }
  [[nodiscard]] double alt_cdf(double x) const {
    return median_of_three_cdf(victim->cdf(x), base->cdf(x), base->cdf(x));
  }
};

/// Observations needed to distinguish Exp(λ)+U(0,b) from Exp(λ')+U(0,b).
long noise_observations(double lambda_victim, double b, double confidence) {
  auto x = std::make_shared<Exponential>(1.0);
  auto xv = std::make_shared<Exponential>(lambda_victim);
  auto noise = std::make_shared<Uniform>(0.0, b);
  const SumOfIndependent null_d(x, noise, 256);
  const SumOfIndependent alt_d(xv, noise, 256);
  const ChiSquaredDetector det(
      [&null_d](double v) { return null_d.cdf(v); },
      [&alt_d](double v) { return alt_d.cdf(v); }, 0.0, 30.0 + b);
  return det.observations_needed(confidence);
}

/// Minimum b giving at least `target` observations at `confidence`.
double calibrate_noise(double lambda_victim, long target, double confidence) {
  double lo = 0.01, hi = 1.0;
  while (noise_observations(lambda_victim, hi, confidence) < target) {
    hi *= 2.0;
    if (hi > 4096.0) return hi;  // cap: noise cannot reach the target
  }
  for (int i = 0; i < 40; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (noise_observations(lambda_victim, mid, confidence) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

/// Ratio of equal-strength uniform-noise delay to StopWatch delay (no
/// victim), returned for the cross-panel scaling comparison.
double run_setting(double lambda_victim, const char* label) {
  const MedianSetting s(lambda_victim);
  const double delta_n = solve_delta_n(1.0, lambda_victim);
  const ChiSquaredDetector median_det(
      [&s](double x) { return s.null_cdf(x); },
      [&s](double x) { return s.alt_cdf(x); }, 0.0, 30.0);

  // Expected values of the medians (numeric integration of the CDFs).
  const double e_med_null =
      mean_from_cdf([&s](double x) { return s.null_cdf(x); }, 60.0);
  const double e_med_victim =
      mean_from_cdf([&s](double x) { return s.alt_cdf(x); }, 60.0);

  std::printf("## Fig 8(%s): victim Exp(%.4f); delta_n = %.2f "
              "(P[|X1-X1'|<=delta_n] >= 0.9999)\n",
              label, lambda_victim, delta_n);
  std::printf("%6s %10s %12s %14s %14s %16s %16s\n", "conf", "N_sw",
              "noise b", "E[X1+XN]", "E[X1'+XN]", "E[X2:3+Dn]",
              "E[X2:3'+Dn]");
  double ratio99 = 0.0;
  for (double conf : {0.70, 0.80, 0.90, 0.99}) {
    const long n_sw = median_det.observations_needed(conf);
    const double b = calibrate_noise(lambda_victim, n_sw, conf);
    std::printf("%6.2f %10ld %12.2f %14.2f %14.2f %16.2f %16.2f\n", conf,
                n_sw, b, 1.0 + b / 2.0, 1.0 / lambda_victim + b / 2.0,
                e_med_null + delta_n, e_med_victim + delta_n);
    ratio99 = (1.0 + b / 2.0) / (e_med_null + delta_n);
  }
  std::printf("\n");
  return ratio99;
}

}  // namespace

int main() {
  std::printf(
      "=== E7: Fig. 8 — StopWatch vs uniform noise at equal strength ===\n\n");
  const double distinct = run_setting(0.5, "a; lambda'=1/2");
  const double close = run_setting(10.0 / 11.0, "b; lambda'=10/11");
  std::printf(
      "Paper shape check (Appendix): the median's delay scales better than\n"
      "equal-strength uniform noise as the victim's distinctiveness grows:\n"
      "noise-delay / StopWatch-delay = %.2fx at lambda'=10/11 (similar\n"
      "distributions) vs %.2fx at lambda'=1/2 (distinct victim).\n"
      "(Under this harness's expected-statistic chi-squared methodology the\n"
      "calibrated b is confidence-independent; the paper's per-confidence\n"
      "growth depends on its empirical test, see EXPERIMENTS.md E7.)\n",
      close, distinct);
  return 0;
}
